"""DPAccuracyValidator (Appendix B.2)."""

import numpy as np
import pytest

from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.outcomes import Outcome
from repro.errors import ValidationError


def correctness(rng, acc, n):
    return (rng.random(n) < acc).astype(float)


class TestConstruction:
    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5])
    def test_target_must_be_interior(self, target):
        with pytest.raises(ValidationError):
            DPAccuracyValidator(target)


class TestAcceptTest:
    def test_accepts_good_classifier(self, rng):
        validator = DPAccuracyValidator(target=0.74)
        result = validator.accept_test(correctness(rng, 0.78, 50_000), 1.0, 0.05, rng)
        assert result.outcome is Outcome.ACCEPT

    def test_retries_bad_classifier(self, rng):
        validator = DPAccuracyValidator(target=0.78)
        result = validator.accept_test(correctness(rng, 0.74, 50_000), 1.0, 0.05, rng)
        assert result.outcome is Outcome.RETRY

    def test_accept_guarantee(self):
        """Accepting a below-target classifier happens at rate <= eta."""
        eta, target = 0.1, 0.75
        true_acc = 0.74
        wrong = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            validator = DPAccuracyValidator(target, confidence=1 - eta)
            result = validator.accept_test(
                correctness(rng, true_acc, 20_000), 1.0, eta, rng
            )
            wrong += result.outcome is Outcome.ACCEPT
        assert wrong / 300 <= eta

    def test_uncorrected_overaccepts_under_noise(self):
        target, true_acc, n = 0.75, 0.735, 500
        accepts = {True: 0, False: 0}
        for corrected in (True, False):
            for seed in range(300):
                rng = np.random.default_rng(seed)
                validator = DPAccuracyValidator(target, confidence=0.9)
                result = validator.accept_test(
                    correctness(rng, true_acc, n), 0.5, 0.1, rng,
                    correct_for_dp=corrected,
                )
                accepts[corrected] += result.outcome is Outcome.ACCEPT
        assert accepts[False] >= accepts[True]

    def test_budget_is_pure_epsilon(self, rng):
        validator = DPAccuracyValidator(0.5)
        result = validator.accept_test(correctness(rng, 0.6, 1000), 0.3, 0.05, rng)
        assert result.budget_spent.epsilon == 0.3
        assert result.budget_spent.delta == 0.0


class TestRejectTest:
    def test_rejects_unreachable_target(self, rng):
        validator = DPAccuracyValidator(target=0.9)
        # Best-in-class achieves only ~0.75 on the training set.
        result = validator.reject_test(correctness(rng, 0.75, 50_000), 1.0, 0.05, rng)
        assert result.outcome is Outcome.REJECT

    def test_keeps_reachable_target(self, rng):
        validator = DPAccuracyValidator(target=0.7)
        result = validator.reject_test(correctness(rng, 0.75, 50_000), 1.0, 0.05, rng)
        assert result.outcome is Outcome.RETRY


class TestValidateFlow:
    def test_accept_then_reject_then_retry(self, rng):
        good = DPAccuracyValidator(0.7).validate(correctness(rng, 0.8, 30_000), 1.0, rng)
        assert good.outcome is Outcome.ACCEPT
        doomed = DPAccuracyValidator(0.9).validate(
            correctness(rng, 0.75, 30_000), 1.0, rng,
            best_correct_train=correctness(rng, 0.76, 30_000),
        )
        assert doomed.outcome is Outcome.REJECT
        undecided = DPAccuracyValidator(0.78).validate(
            correctness(rng, 0.77, 3_000), 1.0, rng
        )
        assert undecided.outcome is Outcome.RETRY
