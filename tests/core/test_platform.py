"""The Sage platform end-to-end (small scale)."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveConfig, SessionStatus
from repro.core.pipeline import PipelineRun, StatisticPipeline
from repro.core.platform import Sage
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.data.taxi import TaxiGenerator
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError


class ThresholdPipeline:
    def __init__(self, name, threshold):
        self.name = name
        self.threshold = threshold

    def run(self, batch, budget, rng, correct_for_dp=True):
        outcome = (
            Outcome.ACCEPT if len(batch) * budget.epsilon >= self.threshold else Outcome.RETRY
        )
        return PipelineRun(
            name=self.name, outcome=outcome,
            validation=ValidationResult(outcome, PrivacyBudget(budget.epsilon, 0.0)),
            budget_charged=budget,
        )


@pytest.fixture
def sage():
    return Sage(TaxiGenerator(points_per_hour=1000), 1.0, 1e-6, block_hours=1.0, seed=0)


class TestLifecycle:
    def test_single_pipeline_releases(self, sage):
        entry = sage.submit(ThresholdPipeline("p", 900.0))
        released = sage.run_until_quiet(max_hours=30)
        assert entry.status == SessionStatus.ACCEPTED
        assert len(released) == 1
        assert sage.store.latest("p") is released[0]
        assert entry.release_time_hours is not None

    def test_release_time_ordering(self, sage):
        easy = sage.submit(ThresholdPipeline("easy", 200.0))
        hard = sage.submit(ThresholdPipeline("hard", 4000.0))
        sage.run_until_quiet(max_hours=60)
        assert easy.release_time_hours <= hard.release_time_hours

    def test_stream_bound_enforced_forever(self, sage):
        """The paper's headline invariant: whatever pipelines do, the
        per-stream guarantee stays within (eps_g, delta_g)."""
        for i in range(4):
            sage.submit(ThresholdPipeline(f"p{i}", 500.0 * (i + 1)))
        sage.run_until_quiet(max_hours=50)
        bound = sage.access.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9
        assert bound.delta <= 1e-6 + 1e-15

    def test_allocation_split_between_waiting(self, sage):
        a = sage.submit(ThresholdPipeline("a", 1e12))
        b = sage.submit(ThresholdPipeline("b", 1e12))
        sage.advance(1.0)
        # The new block's budget was divided between the two waiting pipelines.
        key = sage.database.keys[0]
        total = a.reservations.get(key, 0.0) + b.reservations.get(key, 0.0)
        spent = sum(bud.epsilon for bud in sage.access.accountant.ledger(key).history)
        assert total + spent <= 1.0 + 1e-9

    def test_finished_pipeline_redistributes(self, sage):
        quick = sage.submit(ThresholdPipeline("quick", 100.0))
        slow = sage.submit(ThresholdPipeline("slow", 1e12))
        sage.advance(1.0)
        assert quick.status == SessionStatus.ACCEPTED
        sage.advance(1.0)
        # The slow pipeline now holds more than a naive half share somewhere.
        assert sum(slow.reservations.values()) > 0.5

    def test_free_pool_granted_to_late_arrivals(self, sage):
        sage.advance(3.0)  # blocks arrive with nobody waiting
        late = sage.submit(ThresholdPipeline("late", 900.0))
        sage.advance(1.0)
        assert late.status == SessionStatus.ACCEPTED

    def test_pipeline_named(self, sage):
        sage.submit(ThresholdPipeline("x", 100.0))
        assert sage.pipeline_named("x").name == "x"
        with pytest.raises(PipelineError):
            sage.pipeline_named("ghost")

    def test_statistic_pipeline_on_platform(self):
        sage = Sage(TaxiGenerator(points_per_hour=4000), 1.0, 1e-6, seed=2)
        pipeline = StatisticPipeline(
            "speed-by-dow", key_column="day_of_week", value_column="speed_kmh",
            nkeys=7, value_range=60.0, target=10.0,
        )
        entry = sage.submit(pipeline, AdaptiveConfig(delta=0.0))
        sage.run_until_quiet(max_hours=60)
        assert entry.status == SessionStatus.ACCEPTED
        bundle = sage.store.latest("speed-by-dow")
        assert bundle is not None
        assert bundle.model.shape == (7,)

    def test_clock_advances(self, sage):
        assert sage.clock_hours == 0.0
        sage.advance(2.0)
        assert sage.clock_hours == 2.0
