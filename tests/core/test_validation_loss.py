"""DPLossValidator: Prop 3.1 / B.2 guarantees and the correction ablation."""

import numpy as np
import pytest

from repro.core.validation.loss import DPLossValidator
from repro.core.validation.outcomes import Outcome
from repro.errors import ValidationError


def bernoulli_losses(rng, mean, n):
    return (rng.random(n) < mean).astype(float)


class TestConstruction:
    def test_invalid_target(self):
        with pytest.raises(ValidationError):
            DPLossValidator(-0.1)

    def test_invalid_bound(self):
        with pytest.raises(ValidationError):
            DPLossValidator(0.1, loss_bound=0.0)

    def test_invalid_confidence(self):
        with pytest.raises(ValidationError):
            DPLossValidator(0.1, confidence=1.0)


class TestAcceptTest:
    def test_accepts_clearly_good_model(self, rng):
        validator = DPLossValidator(target=0.2, confidence=0.95)
        losses = bernoulli_losses(rng, 0.05, 50_000)
        result = validator.accept_test(losses, epsilon=1.0, eta=0.05, rng=rng)
        assert result.outcome is Outcome.ACCEPT

    def test_retries_clearly_bad_model(self, rng):
        validator = DPLossValidator(target=0.05)
        losses = bernoulli_losses(rng, 0.3, 50_000)
        result = validator.accept_test(losses, epsilon=1.0, eta=0.05, rng=rng)
        assert result.outcome is Outcome.RETRY

    def test_retries_on_tiny_samples(self, rng):
        validator = DPLossValidator(target=0.5)
        result = validator.accept_test(np.zeros(3), epsilon=0.1, eta=0.05, rng=rng)
        assert result.outcome is Outcome.RETRY

    def test_budget_reported_pure_dp(self, rng):
        validator = DPLossValidator(target=0.2)
        result = validator.accept_test(np.zeros(100), 0.7, 0.05, rng)
        assert result.budget_spent.epsilon == 0.7
        assert result.budget_spent.delta == 0.0

    def test_accept_guarantee_prop31(self):
        """Accepted models violate their target on the true distribution at
        a rate far below eta (Prop. 3.1)."""
        eta, target = 0.1, 0.12
        true_mean = 0.13  # a model that genuinely misses the target
        violations = accepted = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            losses = bernoulli_losses(rng, true_mean, 20_000)
            validator = DPLossValidator(target=target, confidence=1 - eta)
            result = validator.accept_test(losses, epsilon=1.0, eta=eta, rng=rng)
            if result.outcome is Outcome.ACCEPT:
                accepted += 1
                violations += 1  # every accept is a violation by design
        assert accepted / 300 <= eta  # accepting at all is the failure event

    def test_uncorrected_is_overconfident(self):
        """Table 2's UC ablation: without the worst-case corrections, a
        lucky negative Laplace draw on a small test set accepts a bad model;
        the corrected validator never does."""
        target = 0.25
        true_mean = 0.30  # bad model
        n = 150           # small test set at small epsilon: noise dominates
        accepts = {True: 0, False: 0}
        for corrected in (True, False):
            for seed in range(400):
                rng = np.random.default_rng(seed)
                losses = bernoulli_losses(rng, true_mean, n)
                validator = DPLossValidator(target=target, confidence=0.9)
                result = validator.accept_test(
                    losses, epsilon=0.15, eta=0.1, rng=rng, correct_for_dp=corrected
                )
                accepts[corrected] += result.outcome is Outcome.ACCEPT
        assert accepts[False] > accepts[True]
        assert accepts[False] >= 5  # the ablation visibly misbehaves
        assert accepts[True] <= 2   # the correction keeps its promise


class TestRejectTest:
    def test_rejects_unreachable_target(self, rng):
        validator = DPLossValidator(target=0.02)
        # Even the ERM has loss ~0.3: the class cannot reach 0.02.
        erm_losses = bernoulli_losses(rng, 0.3, 50_000)
        result = validator.reject_test(erm_losses, epsilon=1.0, eta=0.05, rng=rng)
        assert result.outcome is Outcome.REJECT

    def test_no_reject_when_target_reachable(self, rng):
        validator = DPLossValidator(target=0.4)
        erm_losses = bernoulli_losses(rng, 0.3, 50_000)
        result = validator.reject_test(erm_losses, epsilon=1.0, eta=0.05, rng=rng)
        assert result.outcome is Outcome.RETRY

    def test_reject_guarantee_propB2(self):
        """REJECT fires on a reachable target at rate <= eta (Prop. B.2)."""
        eta, target = 0.1, 0.3
        true_erm_mean = 0.29  # the class can achieve the target
        wrong_rejects = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            erm_losses = bernoulli_losses(rng, true_erm_mean, 20_000)
            validator = DPLossValidator(target=target, confidence=1 - eta)
            result = validator.reject_test(erm_losses, 1.0, eta, rng)
            wrong_rejects += result.outcome is Outcome.REJECT
        assert wrong_rejects / 300 <= eta


class TestValidateFlow:
    def test_accept_short_circuits(self, rng):
        validator = DPLossValidator(target=0.5)
        result = validator.validate(bernoulli_losses(rng, 0.05, 20_000), 1.0, rng)
        assert result.outcome is Outcome.ACCEPT

    def test_reject_path(self, rng):
        validator = DPLossValidator(target=0.01)
        losses = bernoulli_losses(rng, 0.4, 50_000)
        result = validator.validate(
            losses, 1.0, rng, erm_train_losses=bernoulli_losses(rng, 0.35, 50_000)
        )
        assert result.outcome is Outcome.REJECT

    def test_retry_without_erm(self, rng):
        validator = DPLossValidator(target=0.01)
        result = validator.validate(bernoulli_losses(rng, 0.4, 5_000), 1.0, rng)
        assert result.outcome is Outcome.RETRY
