"""Per-block privacy filters (basic + Rogers strong composition)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accountant import TOT_DELTA, TOT_EPS, TOT_LINEAR, TOT_SQ
from repro.core.filters import BasicCompositionFilter, StrongCompositionFilter
from repro.dp.budget import PrivacyBudget
from repro.errors import InvalidBudgetError


def totals_of(history):
    """The (sum eps, sum delta, sum eps^2, sum linear) a ledger would keep."""
    eps = sum(b.epsilon for b in history)
    delta = sum(b.delta for b in history)
    sq = sum(b.epsilon ** 2 for b in history)
    linear = sum(math.expm1(b.epsilon) * b.epsilon / 2.0 for b in history)
    return (eps, delta, sq, linear)

SMALL_BUDGETS = st.lists(
    st.builds(
        PrivacyBudget,
        st.floats(min_value=0.001, max_value=0.3),
        st.floats(min_value=0.0, max_value=1e-8),
    ),
    max_size=12,
)


class TestBasicFilter:
    def test_admits_until_exhaustion(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        history = []
        charge = PrivacyBudget(0.3, 1e-7)
        for _ in range(3):
            assert f.admits(history, charge)
            history.append(charge)
        # 0.9 spent; 0.3 more would overflow epsilon.
        assert not f.admits(history, charge)
        assert f.admits(history, PrivacyBudget(0.1, 0.0))

    def test_remaining_exact(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        left = f.remaining([PrivacyBudget(0.25, 4e-7)])
        assert left.epsilon == pytest.approx(0.75)
        assert left.delta == pytest.approx(6e-7)

    def test_delta_dimension_enforced(self):
        f = BasicCompositionFilter(10.0, 1e-6)
        history = [PrivacyBudget(0.1, 1e-6)]
        assert not f.admits(history, PrivacyBudget(0.1, 1e-7))
        assert f.admits(history, PrivacyBudget(0.1, 0.0))

    def test_max_epsilon(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        assert f.max_epsilon([PrivacyBudget(0.4, 0.0)], 0.0) == pytest.approx(0.6)
        assert f.max_epsilon([], 2e-6) == 0.0  # delta unaffordable

    def test_loss_bound_is_sum(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        bound = f.loss_bound([PrivacyBudget(0.2), PrivacyBudget(0.3)])
        assert bound.epsilon == pytest.approx(0.5)

    def test_invalid_global_params(self):
        with pytest.raises(InvalidBudgetError):
            BasicCompositionFilter(0.0, 1e-6)
        with pytest.raises(InvalidBudgetError):
            BasicCompositionFilter(1.0, 2.0)

    @given(SMALL_BUDGETS)
    @settings(max_examples=50)
    def test_never_admits_past_global(self, history):
        f = BasicCompositionFilter(1.0, 1e-6)
        admitted = []
        for b in history:
            if f.admits(admitted, b):
                admitted.append(b)
        total = sum(b.epsilon for b in admitted)
        assert total <= 1.0 + 1e-9


class TestStrongFilter:
    def test_requires_positive_slack(self):
        with pytest.raises(InvalidBudgetError):
            StrongCompositionFilter(1.0, 0.0)

    def test_slack_cannot_exceed_delta(self):
        with pytest.raises(InvalidBudgetError):
            StrongCompositionFilter(1.0, 1e-6, delta_slack=1e-5)

    def test_admits_more_small_queries_than_basic(self):
        """Strong composition's payoff regime: many queries much smaller
        than the global budget (here 0.005 vs eps_g = 1)."""
        basic = BasicCompositionFilter(1.0, 1e-6)
        strong = StrongCompositionFilter(1.0, 1e-6)
        charge = PrivacyBudget(0.005, 0.0)
        history = []
        while basic.admits(history, charge):
            history.append(charge)
        k_basic = len(history)
        while strong.admits(history, charge):
            history.append(charge)
        assert len(history) > 1.5 * k_basic

    def test_single_big_query_behaves_like_basic(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        assert not strong.admits([], PrivacyBudget(1.5, 0.0))

    def test_delta_budget_shared_with_slack(self):
        strong = StrongCompositionFilter(1.0, 1e-6, delta_slack=5e-7)
        # Queries may consume at most delta_global - slack = 5e-7 in total.
        assert strong.admits([], PrivacyBudget(0.1, 4e-7))
        assert not strong.admits([PrivacyBudget(0.1, 4e-7)], PrivacyBudget(0.1, 2e-7))

    def test_max_epsilon_bisection(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        history = [PrivacyBudget(0.01, 0.0)] * 10
        limit = strong.max_epsilon(history, 0.0)
        assert 0.0 < limit < 1.0
        assert strong.admits(history, PrivacyBudget(limit * 0.999, 0.0))
        assert not strong.admits(history, PrivacyBudget(min(1.0, limit * 1.01), 0.0))

    def test_basic_fallback_keeps_moderate_queries_admissible(self):
        """A lone eps=0.125 query trivially fits eps_g=1 by basic
        composition even though the Rogers bound alone would refuse it."""
        strong = StrongCompositionFilter(1.0, 1e-6)
        assert strong.admits([], PrivacyBudget(0.125, 0.0))
        # Basic fallback also gives exact headroom after moderate spends.
        limit = strong.max_epsilon([PrivacyBudget(0.1, 0.0)] * 5, 0.0)
        assert limit == pytest.approx(0.5, abs=1e-6)

    def test_loss_bound_grows_with_history(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        a = strong.loss_bound([PrivacyBudget(0.1)] * 2)
        b = strong.loss_bound([PrivacyBudget(0.1)] * 6)
        assert b.epsilon > a.epsilon

    def test_loss_bound_from_totals_equals_replay(self):
        """The O(1) totals path (used by ledgers / stream_loss_bound) must
        match replaying the history."""
        history = [PrivacyBudget(0.05, 1e-8)] * 9
        for f in (BasicCompositionFilter(1.0, 1e-6), StrongCompositionFilter(1.0, 1e-6)):
            replayed = f.loss_bound(history)
            from_totals = f.loss_bound(history, totals=totals_of(history))
            assert from_totals.epsilon == pytest.approx(replayed.epsilon)
            assert from_totals.delta == pytest.approx(replayed.delta)

    @given(SMALL_BUDGETS)
    @settings(max_examples=30)
    def test_filter_never_admits_past_global(self, history):
        """Whatever gets admitted, the reported loss bound fits eps_g."""
        strong = StrongCompositionFilter(1.0, 1e-6)
        admitted = []
        for b in history:
            if strong.admits(admitted, b):
                admitted.append(b)
        if admitted:
            assert strong.loss_bound(admitted).epsilon <= 1.0 + 1e-9


class TestSplitRecomposition:
    """Charging eps_g/k (and the query share of delta_g/k) exactly k times
    must never be rejected on the final charge by float accumulation drift
    in the running sums."""

    def test_strong_delta_split_survives_drift(self):
        """Regression: 4096 charges of (delta_g/2)/4096 used to be rejected
        on charge 4096 -- the running delta sum drifted past the strict
        absolute 1e-15 slack."""
        f = StrongCompositionFilter(1.0, 0.1)
        charge = PrivacyBudget(1e-6, (0.1 / 2) / 4096)
        totals = (0.0, 0.0, 0.0, 0.0)
        for i in range(4096):
            assert f.admits(None, charge, totals=totals), f"rejected at charge {i}"
            totals = tuple(
                a + b
                for a, b in zip(
                    totals,
                    (
                        charge.epsilon,
                        charge.delta,
                        charge.epsilon ** 2,
                        math.expm1(charge.epsilon) * charge.epsilon / 2.0,
                    ),
                )
            )

    def test_basic_max_epsilon_agrees_with_admits_in_tolerance_band(self):
        """max_epsilon must not report zero headroom for a delta that
        admits() would accept (they share fits_within's slack)."""
        f = BasicCompositionFilter(1.0, 0.9)
        history = [PrivacyBudget(0.1, 0.9)]  # delta fully spent
        candidate = PrivacyBudget(0.05, 1e-11)  # inside fits_within's slack
        assert f.admits(history, candidate)
        assert f.max_epsilon(history, candidate.delta) > 0.0

    def test_rogers_scalar_and_batch_bit_identical(self):
        import numpy as np

        from repro.dp.composition import (
            rogers_filter_epsilon_from_sums,
            rogers_filter_epsilon_from_sums_batch,
        )

        rng = np.random.default_rng(1)
        sq = rng.uniform(0.0, 2.0, 500)
        lin = rng.uniform(0.0, 2.0, 500)
        batch = rogers_filter_epsilon_from_sums_batch(sq, lin, 1.0, 5e-7)
        scalar = [
            rogers_filter_epsilon_from_sums(float(s), float(l), 1.0, 5e-7)
            for s, l in zip(sq, lin)
        ]
        assert np.array_equal(batch, np.array(scalar))

    def test_basic_max_epsilon_consistent_with_admits_after_split(self):
        """Regression: after 4095 of 4096 delta_g/k charges, max_epsilon
        reported 0.0 (delta 'unaffordable' by drift) even though admits
        accepted the final charge."""
        f = BasicCompositionFilter(1.0, 0.9)
        charge = PrivacyBudget(1e-6, 0.9 / 4096)
        history = [charge] * 4095
        assert f.admits(history, charge)
        assert f.max_epsilon(history, charge.delta) > 0.0

    @given(
        st.integers(min_value=1, max_value=400),
        st.floats(min_value=1e-3, max_value=50.0),
        st.floats(min_value=1e-8, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_k_way_split_fully_charges(self, k, eps_g, delta_g):
        """Every (k, eps_g, delta_g) split admits all k charges, through
        both filters, using the ledger's running-totals path."""
        basic = BasicCompositionFilter(eps_g, delta_g)
        strong = StrongCompositionFilter(eps_g, delta_g)
        basic_charge = PrivacyBudget(eps_g / k, delta_g / k)
        strong_charge = PrivacyBudget(eps_g / k, (delta_g / 2.0) / k)
        basic_totals = [0.0, 0.0, 0.0, 0.0]
        strong_totals = [0.0, 0.0, 0.0, 0.0]
        for i in range(k):
            assert basic.admits(None, basic_charge, totals=tuple(basic_totals)), (
                f"basic rejected charge {i + 1}/{k}"
            )
            # The strong filter may legitimately refuse on its eps side (the
            # Rogers bound exceeds eps_g for moderate per-query epsilons)
            # but never on delta drift: a zero-eps probe carrying the same
            # delta isolates the delta check.
            assert strong.admits(
                None,
                PrivacyBudget(0.0, strong_charge.delta),
                totals=tuple(strong_totals),
            ), f"strong filter rejected the delta share at charge {i + 1}/{k}"
            for totals, charge in (
                (basic_totals, basic_charge),
                (strong_totals, strong_charge),
            ):
                totals[TOT_EPS] += charge.epsilon
                totals[TOT_DELTA] += charge.delta
                totals[TOT_SQ] += charge.epsilon ** 2
                totals[TOT_LINEAR] += math.expm1(charge.epsilon) * charge.epsilon / 2.0


TOTALS_ROWS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=2e-6),
        st.floats(min_value=0.0, max_value=1.5),
        st.floats(min_value=0.0, max_value=1.5),
    ),
    min_size=1,
    max_size=20,
)


class TestBatchedMatchesScalar:
    """admits_batch must be decision-identical to row-by-row admits."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: BasicCompositionFilter(1.0, 1e-6),
            lambda: StrongCompositionFilter(1.0, 1e-6),
            lambda: BasicCompositionFilter(23.0, 0.9),
            lambda: StrongCompositionFilter(23.0, 0.9),
        ],
    )
    @given(rows=TOTALS_ROWS, eps=st.floats(min_value=0.0, max_value=1.5))
    @settings(max_examples=40, deadline=None)
    def test_property_batch_equals_scalar(self, make, rows, eps):
        f = make()
        candidate = PrivacyBudget(eps, 1e-9)
        matrix = np.array(rows, dtype=np.float64)
        batched = f.admits_batch(matrix, candidate)
        scalar = [f.admits((), candidate, totals=tuple(row)) for row in rows]
        assert list(batched) == scalar

    def test_batch_on_real_charge_histories(self):
        rng = np.random.default_rng(3)
        for f in (BasicCompositionFilter(1.0, 1e-6), StrongCompositionFilter(1.0, 1e-6)):
            histories = []
            for _ in range(40):
                n = int(rng.integers(0, 30))
                histories.append(
                    [
                        PrivacyBudget(float(rng.uniform(0.001, 0.2)), float(rng.uniform(0, 2e-8)))
                        for _ in range(n)
                    ]
                )
            matrix = np.array([totals_of(h) for h in histories])
            for eps in (0.01, 0.1, 0.5, 0.99, 1.0):
                candidate = PrivacyBudget(eps, 1e-9)
                batched = list(f.admits_batch(matrix, candidate))
                scalar = [f.admits(h, candidate, totals=totals_of(h)) for h in histories]
                assert batched == scalar

    def test_max_epsilon_batch_matches_scalar_min(self):
        histories = [
            [PrivacyBudget(0.1, 0.0)] * 3,
            [PrivacyBudget(0.05, 0.0)] * 8,
            [],
        ]
        for f in (BasicCompositionFilter(1.0, 1e-6), StrongCompositionFilter(1.0, 1e-6)):
            matrix = np.array([totals_of(h) for h in histories])
            joint = f.max_epsilon_batch(matrix, 0.0)
            scalar = min(f.max_epsilon(h, 0.0) for h in histories)
            assert joint == pytest.approx(scalar, abs=1e-9)

    def test_empty_batch(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        matrix = np.zeros((0, 4))
        assert f.admits_batch(matrix, PrivacyBudget(0.1, 0.0)).shape == (0,)
        assert f.max_epsilon_batch(matrix, 0.0) == 0.0
