"""Per-block privacy filters (basic + Rogers strong composition)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.filters import BasicCompositionFilter, StrongCompositionFilter
from repro.dp.budget import PrivacyBudget
from repro.errors import InvalidBudgetError

SMALL_BUDGETS = st.lists(
    st.builds(
        PrivacyBudget,
        st.floats(min_value=0.001, max_value=0.3),
        st.floats(min_value=0.0, max_value=1e-8),
    ),
    max_size=12,
)


class TestBasicFilter:
    def test_admits_until_exhaustion(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        history = []
        charge = PrivacyBudget(0.3, 1e-7)
        for _ in range(3):
            assert f.admits(history, charge)
            history.append(charge)
        # 0.9 spent; 0.3 more would overflow epsilon.
        assert not f.admits(history, charge)
        assert f.admits(history, PrivacyBudget(0.1, 0.0))

    def test_remaining_exact(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        left = f.remaining([PrivacyBudget(0.25, 4e-7)])
        assert left.epsilon == pytest.approx(0.75)
        assert left.delta == pytest.approx(6e-7)

    def test_delta_dimension_enforced(self):
        f = BasicCompositionFilter(10.0, 1e-6)
        history = [PrivacyBudget(0.1, 1e-6)]
        assert not f.admits(history, PrivacyBudget(0.1, 1e-7))
        assert f.admits(history, PrivacyBudget(0.1, 0.0))

    def test_max_epsilon(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        assert f.max_epsilon([PrivacyBudget(0.4, 0.0)], 0.0) == pytest.approx(0.6)
        assert f.max_epsilon([], 2e-6) == 0.0  # delta unaffordable

    def test_loss_bound_is_sum(self):
        f = BasicCompositionFilter(1.0, 1e-6)
        bound = f.loss_bound([PrivacyBudget(0.2), PrivacyBudget(0.3)])
        assert bound.epsilon == pytest.approx(0.5)

    def test_invalid_global_params(self):
        with pytest.raises(InvalidBudgetError):
            BasicCompositionFilter(0.0, 1e-6)
        with pytest.raises(InvalidBudgetError):
            BasicCompositionFilter(1.0, 2.0)

    @given(SMALL_BUDGETS)
    @settings(max_examples=50)
    def test_never_admits_past_global(self, history):
        f = BasicCompositionFilter(1.0, 1e-6)
        admitted = []
        for b in history:
            if f.admits(admitted, b):
                admitted.append(b)
        total = sum(b.epsilon for b in admitted)
        assert total <= 1.0 + 1e-9


class TestStrongFilter:
    def test_requires_positive_slack(self):
        with pytest.raises(InvalidBudgetError):
            StrongCompositionFilter(1.0, 0.0)

    def test_slack_cannot_exceed_delta(self):
        with pytest.raises(InvalidBudgetError):
            StrongCompositionFilter(1.0, 1e-6, delta_slack=1e-5)

    def test_admits_more_small_queries_than_basic(self):
        """Strong composition's payoff regime: many queries much smaller
        than the global budget (here 0.005 vs eps_g = 1)."""
        basic = BasicCompositionFilter(1.0, 1e-6)
        strong = StrongCompositionFilter(1.0, 1e-6)
        charge = PrivacyBudget(0.005, 0.0)
        history = []
        while basic.admits(history, charge):
            history.append(charge)
        k_basic = len(history)
        while strong.admits(history, charge):
            history.append(charge)
        assert len(history) > 1.5 * k_basic

    def test_single_big_query_behaves_like_basic(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        assert not strong.admits([], PrivacyBudget(1.5, 0.0))

    def test_delta_budget_shared_with_slack(self):
        strong = StrongCompositionFilter(1.0, 1e-6, delta_slack=5e-7)
        # Queries may consume at most delta_global - slack = 5e-7 in total.
        assert strong.admits([], PrivacyBudget(0.1, 4e-7))
        assert not strong.admits([PrivacyBudget(0.1, 4e-7)], PrivacyBudget(0.1, 2e-7))

    def test_max_epsilon_bisection(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        history = [PrivacyBudget(0.01, 0.0)] * 10
        limit = strong.max_epsilon(history, 0.0)
        assert 0.0 < limit < 1.0
        assert strong.admits(history, PrivacyBudget(limit * 0.999, 0.0))
        assert not strong.admits(history, PrivacyBudget(min(1.0, limit * 1.01), 0.0))

    def test_basic_fallback_keeps_moderate_queries_admissible(self):
        """A lone eps=0.125 query trivially fits eps_g=1 by basic
        composition even though the Rogers bound alone would refuse it."""
        strong = StrongCompositionFilter(1.0, 1e-6)
        assert strong.admits([], PrivacyBudget(0.125, 0.0))
        # Basic fallback also gives exact headroom after moderate spends.
        limit = strong.max_epsilon([PrivacyBudget(0.1, 0.0)] * 5, 0.0)
        assert limit == pytest.approx(0.5, abs=1e-6)

    def test_loss_bound_grows_with_history(self):
        strong = StrongCompositionFilter(1.0, 1e-6)
        a = strong.loss_bound([PrivacyBudget(0.1)] * 2)
        b = strong.loss_bound([PrivacyBudget(0.1)] * 6)
        assert b.epsilon > a.epsilon

    @given(SMALL_BUDGETS)
    @settings(max_examples=30)
    def test_filter_never_admits_past_global(self, history):
        """Whatever gets admitted, the reported loss bound fits eps_g."""
        strong = StrongCompositionFilter(1.0, 1e-6)
        admitted = []
        for b in history:
            if strong.admits(admitted, b):
                admitted.append(b)
        if admitted:
            assert strong.loss_bound(admitted).epsilon <= 1.0 + 1e-9
