"""ModelFeatureStore release registry."""

import pytest

from repro.core.model_store import ModelFeatureStore
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.dp.budget import PrivacyBudget
from repro.errors import PipelineError


def validation(outcome=Outcome.ACCEPT):
    return ValidationResult(outcome, PrivacyBudget(0.5, 0.0))


class TestRelease:
    def test_versions_increment(self):
        store = ModelFeatureStore()
        first = store.release("m", object(), {}, validation(), PrivacyBudget(0.5), [0])
        second = store.release("m", object(), {}, validation(), PrivacyBudget(0.5), [1])
        assert (first.version, second.version) == (1, 2)
        assert store.latest("m") is second
        assert len(store.versions("m")) == 2

    def test_refuses_unvalidated_models(self):
        store = ModelFeatureStore()
        for outcome in (Outcome.RETRY, Outcome.REJECT):
            with pytest.raises(PipelineError):
                store.release("m", object(), {}, validation(outcome), PrivacyBudget(0.1), [0])

    def test_lookup_missing(self):
        store = ModelFeatureStore()
        assert store.latest("ghost") is None
        assert store.versions("ghost") == []

    def test_names_and_len(self):
        store = ModelFeatureStore()
        store.release("a", object(), {}, validation(), PrivacyBudget(0.1), [0])
        store.release("b", object(), {}, validation(), PrivacyBudget(0.2), [0])
        assert sorted(store.names()) == ["a", "b"]
        assert len(store) == 2

    def test_total_released_budget(self):
        store = ModelFeatureStore()
        store.release("a", object(), {}, validation(), PrivacyBudget(0.1, 1e-7), [0])
        store.release("b", object(), {}, validation(), PrivacyBudget(0.2, 1e-7), [0])
        total = store.total_released_budget()
        assert total.epsilon == pytest.approx(0.3)
        assert total.delta == pytest.approx(2e-7)

    def test_bundle_provenance(self):
        store = ModelFeatureStore()
        bundle = store.release(
            "m", "model-obj", {"f": 1}, validation(), PrivacyBudget(0.5),
            block_keys=[3, 4], release_time_hours=17.0,
        )
        assert bundle.block_keys == (3, 4)
        assert bundle.release_time_hours == 17.0
        assert bundle.features == {"f": 1}
