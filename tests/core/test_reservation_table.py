"""ReservationTable: the allocator's contiguous pipelines x blocks matrix."""

import numpy as np
import pytest

from repro.core.accountant import TOT_EPS, BlockAccountant
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import ReservationTable, Sage
from repro.data.taxi import TaxiGenerator
from repro.dp.budget import PrivacyBudget
from repro.errors import AccessDeniedError


class DictAllocator:
    """The seed's dict semantics, as the reference implementation."""

    def __init__(self):
        self.reservations = {}  # pipeline -> {block: epsilon}
        self.free = {}

    def add_pipeline(self, p):
        self.reservations[p] = {}

    def allocate(self, block, amount, waiting):
        if not waiting:
            self.free[block] = self.free.get(block, 0.0) + amount
            return
        share = amount / len(waiting)
        for p in waiting:
            self.reservations[p][block] = self.reservations[p].get(block, 0.0) + share

    def grant_free(self, waiting):
        if not waiting or not self.free:
            return
        for block, amount in list(self.free.items()):
            share = amount / len(waiting)
            for p in waiting:
                self.reservations[p][block] = (
                    self.reservations[p].get(block, 0.0) + share
                )
            del self.free[block]

    def release(self, p, waiting):
        leftovers = {k: v for k, v in self.reservations[p].items() if v > 0}
        self.reservations[p] = {}
        for block, amount in leftovers.items():
            if waiting:
                share = amount / len(waiting)
                for q in waiting:
                    self.reservations[q][block] = (
                        self.reservations[q].get(block, 0.0) + share
                    )
            else:
                self.free[block] = self.free.get(block, 0.0) + amount

    def settle(self, p, blocks, epsilon):
        for block in blocks:
            held = self.reservations[p].get(block, 0.0)
            self.reservations[p][block] = max(0.0, held - epsilon)

    def limit(self, p, blocks):
        if not blocks:
            return 0.0
        return min(self.reservations[p].get(b, 0.0) for b in blocks)


def test_matches_dict_reference_through_random_schedule():
    """A random allocate/grant/settle/release schedule must reproduce the
    seed's dict allocator value-for-value."""
    rng = np.random.default_rng(9)
    table = ReservationTable(pipeline_capacity=1, block_capacity=1)  # force growth
    ref = DictAllocator()
    n_pipelines, n_blocks = 7, 40
    for p in range(n_pipelines):
        new_row = table.add_pipeline()
        assert new_row == p
        ref.add_pipeline(p)
    waiting = list(range(n_pipelines))
    for b in range(n_blocks):
        new_col = table.add_block()
        assert new_col == b
        active = [p for p in waiting if rng.random() < 0.8]
        table.allocate(b, 1.0, np.array(active, dtype=np.intp))
        ref.allocate(b, 1.0, active)
        if rng.random() < 0.3:
            p = int(rng.integers(n_pipelines))
            blocks = list(rng.choice(b + 1, size=min(b + 1, 3), replace=False))
            eps = float(rng.uniform(0.0, 0.2))
            table.settle(p, np.array(blocks, dtype=np.intp), eps)
            ref.settle(p, blocks, eps)
        if rng.random() < 0.2:
            p = waiting.pop(int(rng.integers(len(waiting)))) if len(waiting) > 1 else None
            if p is not None:
                table.release(p, np.array(waiting, dtype=np.intp))
                ref.release(p, waiting)
        table.grant_free(np.array(waiting, dtype=np.intp))
        ref.grant_free(waiting)
    for p in range(n_pipelines):
        for b in range(n_blocks):
            assert table.values(p, np.array([b]))[0] == ref.reservations[p].get(b, 0.0)
        probe = list(range(0, n_blocks, 7))
        assert table.limit(p, np.array(probe, dtype=np.intp)) == ref.limit(p, probe)
    free_ref = np.zeros(n_blocks)
    for b, v in ref.free.items():
        free_ref[b] = v
    assert np.array_equal(table.free_epsilon, free_ref)


def test_unknown_columns_read_as_zero():
    table = ReservationTable()
    row = table.add_pipeline()
    table.add_block()
    table.allocate(0, 1.0, np.array([row], dtype=np.intp))
    values = table.values(row, np.array([0, 5], dtype=np.intp))
    assert values[0] == pytest.approx(1.0)
    assert values[1] == 0.0
    assert table.limit(row, np.array([0, 5], dtype=np.intp)) == 0.0
    assert table.limit(row, np.array([], dtype=np.intp)) == 0.0


def test_epsilon_conservation_on_platform():
    """Reservations + free pool + settled spend account for every block's
    epsilon_global exactly, hour after hour."""
    sage = Sage(TaxiGenerator(points_per_hour=1000), 1.0, 1e-6, seed=4)
    sage.advance(2.0)  # free-pool hours
    entries = [
        sage.submit(_Threshold(f"p{i}", 600.0 * (i + 1))) for i in range(3)
    ]
    for _ in range(8):
        sage.advance(1.0)
        table = sage.reservation_table
        accountant = sage.access.accountant
        n_blocks = table.n_blocks
        assert n_blocks == len(accountant.store)
        reserved = table.matrix.sum(axis=0)
        spent = accountant.store.totals[:, TOT_EPS]
        outstanding = reserved + table.free_epsilon + spent
        assert np.all(outstanding <= 1.0 + 1e-9)


def test_platform_reservations_dict_mirrors_table():
    sage = Sage(TaxiGenerator(points_per_hour=1000), 1.0, 1e-6, seed=4)
    a = sage.submit(_Threshold("a", 1e12))
    b = sage.submit(_Threshold("b", 1e12))
    sage.advance(2.0)
    key = sage.database.keys[0]
    row = sage.access.accountant.rows_for_keys([key])[0]
    for entry in (a, b):
        held = sage.reservation_table.values(entry.table_row, np.array([row]))[0]
        assert entry.reservations.get(key, 0.0) == held
        assert all(v != 0.0 for v in entry.reservations.values())


def test_failed_request_many_leaves_table_untouched():
    """A rejected settlement batch must leave the ReservationTable (and the
    ledger store) byte-for-byte unchanged."""
    sage = Sage(TaxiGenerator(points_per_hour=1000), 1.0, 1e-6, seed=4)
    sage.submit(_Threshold("p", 1e12), AdaptiveConfig(epsilon_start=0.5))
    sage.advance(3.0)
    keys = sage.database.keys[:2]
    table_before = sage.reservation_table.matrix.copy()
    free_before = sage.reservation_table.free_epsilon.copy()
    totals_before = sage.access.accountant.store.totals.copy()
    with pytest.raises(Exception):
        sage.access.request_many(
            [
                (keys, PrivacyBudget(0.3, 0.0)),
                (keys, PrivacyBudget(0.9, 0.0)),  # overdraws: whole batch dies
            ]
        )
    assert np.array_equal(sage.reservation_table.matrix, table_before)
    assert np.array_equal(sage.reservation_table.free_epsilon, free_before)
    assert np.array_equal(sage.access.accountant.store.totals, totals_before)


def test_request_many_charges_stream_and_context():
    from repro.core.access_control import SageAccessControl

    access = SageAccessControl(1.0, 1e-6)
    access.add_context("dev", 0.5, 1e-6)
    access.register_blocks([0, 1, 2])
    records = access.request_many(
        [([0, 1], PrivacyBudget(0.2, 0.0)), ([1, 2], PrivacyBudget(0.2, 0.0), "x")],
        context="dev",
    )
    assert len(records) == 2
    assert access.accountant.ledger(1).totals[TOT_EPS] == pytest.approx(0.4)
    with pytest.raises(AccessDeniedError):
        # The context (0.5) refuses before the stream (1.0) is touched.
        access.request_many([([0], PrivacyBudget(0.4, 0.0))], context="dev")
    assert access.accountant.ledger(0).totals[TOT_EPS] == pytest.approx(0.2)
    assert access.can_request_many([([0], PrivacyBudget(0.4, 0.0))])
    assert not access.can_request_many([([0], PrivacyBudget(0.4, 0.0))], context="dev")


def test_request_many_accepts_generators():
    """Regression: the batch endpoints consume ``requests`` once per ledger
    set; a generator must not be silently exhausted by the context
    pre-check (which would commit nothing and return success)."""
    from repro.core.access_control import SageAccessControl

    access = SageAccessControl(1.0, 1e-6)
    access.add_context("dev", 0.5, 1e-6)
    access.register_blocks([0, 1])
    records = access.request_many(
        ((keys, PrivacyBudget(0.1, 0.0)) for keys in ([0], [0, 1])), context="dev"
    )
    assert len(records) == 2
    assert access.accountant.ledger(0).totals[TOT_EPS] == pytest.approx(0.2)
    assert not access.can_request_many(
        (r for r in [([0], PrivacyBudget(0.45, 0.0))]), context="dev"
    )


class _Threshold:
    def __init__(self, name, threshold):
        self.name = name
        self.threshold = threshold

    def run(self, batch, budget, rng, correct_for_dp=True):
        from repro.core.pipeline import PipelineRun
        from repro.core.validation.outcomes import Outcome, ValidationResult

        outcome = (
            Outcome.ACCEPT
            if len(batch) * budget.epsilon >= self.threshold
            else Outcome.RETRY
        )
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=ValidationResult(outcome, PrivacyBudget(budget.epsilon, 0.0)),
            budget_charged=budget,
        )
