"""Renyi block accounting: the per-order RDP ledger schema and
:class:`RenyiCompositionFilter`, end to end.

Covers the filter's decision logic (scalar/batch grid parity, closed-form
``max_epsilon`` inversion, the superset-of-strong-composition property for
Gaussian-style workloads), the order-extended ledger store under
``charge_many``/staging (byte-parity and rollback), and the platform drive
(an RDP-filtered stream runs the full batched propose/settle protocol).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accountant import BlockAccountant
from repro.core.adaptive import AdaptiveConfig, AdaptiveSession
from repro.core.filters import (
    TOTALS_BASE,
    PrivacyFilter,
    RenyiCompositionFilter,
    StrongCompositionFilter,
)
from repro.core.platform import Sage
from repro.dp.budget import PrivacyBudget, ZERO_BUDGET
from repro.dp.rdp import (
    compute_rdp,
    gaussian_mechanism_budget,
    pure_dp_rdp,
    rdp_epsilon_penalties,
)
from repro.errors import BudgetExceededError, InvalidBudgetError
from repro.workload.oracle import CountStreamSource, OraclePipeline

ORDERS_SMALL = (2, 3, 4, 8, 16, 32, 64)


def replay_totals(filt: PrivacyFilter, history) -> np.ndarray:
    """A ledger's accumulation of ``history`` (the float op order ledgers,
    charge_many, and staging all share)."""
    totals = np.zeros(filt.totals_width)
    for budget in history:
        totals += filt.contribution(budget)
    return totals


def count_admitted(filt: PrivacyFilter, charge: PrivacyBudget, cap: int = 5000) -> int:
    """How many copies of ``charge`` one block absorbs before refusal."""
    totals = np.zeros(filt.totals_width)
    n = 0
    while n < cap and filt.admits((), charge, totals=tuple(totals)):
        totals += filt.contribution(charge)
        n += 1
    return n


class TestRenyiFilterUnit:
    def test_schema_declaration(self):
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        assert f.totals_width == TOTALS_BASE + len(ORDERS_SMALL)
        assert f.delta_reserved == pytest.approx(5e-7)
        contrib = f.contribution(PrivacyBudget(0.1, 1e-9))
        assert contrib.shape == (f.totals_width,)
        assert contrib[0] == pytest.approx(0.1)
        assert np.array_equal(contrib[TOTALS_BASE:], pure_dp_rdp(0.1, ORDERS_SMALL))

    def test_requires_positive_delta(self):
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 0.0)
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 1e-6, delta_conversion=2e-6)
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 1e-6, orders=())

    def test_fractional_orders_rejected_not_truncated(self):
        """Regression: the filter needs the integer-order expansion paths,
        so fractional orders must raise, never be silently truncated to a
        coarser grid -- while the conversion helpers themselves keep
        accepting any real order > 1."""
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 1e-6, orders=(2.5, 3.5))
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 1e-6, orders=(1,))
        assert rdp_epsilon_penalties((1.5, 2.5), 1e-6).shape == (2,)

    def test_loss_bound_reports_delta_of_zero_epsilon_charges(self):
        """Regression: a history of pure-delta charges is real spend; the
        scalar bound must report it exactly as loss_bound_batch does."""
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        history = [PrivacyBudget(0.0, 1e-7)]
        bound = f.loss_bound(history)
        assert bound.delta == pytest.approx(5e-7 + 1e-7)
        _, delta_rows = f.loss_bound_batch(
            replay_totals(f, history).reshape(1, -1)
        )
        assert float(delta_rows[0]) == pytest.approx(bound.delta)

    def test_admits_until_exhaustion_and_beats_strong(self):
        charge = PrivacyBudget(0.01, 1e-9)
        renyi = count_admitted(RenyiCompositionFilter(1.0, 1e-6), charge)
        strong = count_admitted(StrongCompositionFilter(1.0, 1e-6), charge)
        assert 0 < strong < renyi < 5000

    def test_delta_dimension_enforced(self):
        f = RenyiCompositionFilter(10.0, 1e-6)
        # delta_conversion (5e-7) plus the charge deltas may not pass 1e-6.
        history = [PrivacyBudget(0.1, 4e-7)]
        assert not f.admits(history, PrivacyBudget(0.1, 2e-7))
        assert f.admits(history, PrivacyBudget(0.1, 0.0))

    def test_gaussian_charges_use_exact_curve(self):
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        g = gaussian_mechanism_budget(0.01, 2.0, 100, 1e-8, orders=ORDERS_SMALL)
        assert np.array_equal(
            f.charge_rdp(g), compute_rdp(0.01, 2.0, 100, ORDERS_SMALL)
        )
        # The exact curve is far below the pure-DP reduction of the
        # converted epsilon, so many more such charges are admitted than
        # equal plain (epsilon, delta) charges.
        plain = PrivacyBudget(g.epsilon, g.delta)
        assert count_admitted(f, g) > 2 * count_admitted(f, plain)

    def test_grid_parity_scalar_vs_batch(self):
        """admits_batch must equal the scalar rule decision-for-decision on
        rows straddling the admit boundary."""
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        rng = np.random.default_rng(7)
        rows = []
        for _ in range(60):
            history = [
                PrivacyBudget(float(rng.uniform(0.001, 0.2)), float(rng.uniform(0, 4e-9)))
                for _ in range(int(rng.integers(0, 60)))
            ]
            rows.append(replay_totals(f, history))
        matrix = np.array(rows)
        for candidate in (
            PrivacyBudget(0.01, 0.0),
            PrivacyBudget(0.2, 1e-8),
            PrivacyBudget(0.7, 0.0),
            gaussian_mechanism_budget(0.02, 1.5, 50, 1e-9, orders=ORDERS_SMALL),
        ):
            batch = f.admits_batch(matrix, candidate)
            scalar = [f.admits((), candidate, totals=tuple(row)) for row in rows]
            assert batch.tolist() == scalar

    def test_max_epsilon_closed_form_matches_bisection(self):
        """The per-order inversion must agree with the generic base-class
        bisection of admits_batch (the independent reference)."""
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        rng = np.random.default_rng(3)
        for _ in range(20):
            history = [
                PrivacyBudget(float(rng.uniform(0.001, 0.15)), 0.0)
                for _ in range(int(rng.integers(0, 40)))
            ]
            matrix = replay_totals(f, history).reshape(1, -1)
            closed = f.max_epsilon_batch(matrix, 0.0)
            bisected = PrivacyFilter.max_epsilon_batch(f, matrix, 0.0)
            assert closed == pytest.approx(bisected, abs=1e-9)
            # A charge at exactly the reported headroom is always admitted.
            if closed > 0.0:
                assert f.admits((), PrivacyBudget(closed, 0.0), totals=tuple(matrix[0]))

    def test_max_epsilon_joint_over_rows(self):
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        light = replay_totals(f, [PrivacyBudget(0.05, 0.0)])
        heavy = replay_totals(f, [PrivacyBudget(0.4, 0.0)] * 2)
        joint = f.max_epsilon_batch(np.array([light, heavy]), 0.0)
        worst = f.max_epsilon_batch(heavy.reshape(1, -1), 0.0)
        assert joint == pytest.approx(worst)
        assert joint <= f.max_epsilon_batch(light.reshape(1, -1), 0.0)

    def test_max_epsilon_scalar_matches_batch(self):
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        history = [PrivacyBudget(0.1, 1e-9)] * 3
        assert f.max_epsilon(history, 1e-9) == pytest.approx(
            f.max_epsilon_batch(replay_totals(f, history).reshape(1, -1), 1e-9)
        )

    def test_loss_bound_tracks_conversion(self):
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        assert f.loss_bound([]) == ZERO_BUDGET
        history = [PrivacyBudget(0.05, 1e-9)] * 10
        bound = f.loss_bound(history)
        totals = replay_totals(f, history)
        from_totals = f.loss_bound(history, totals=tuple(totals))
        assert bound.epsilon == pytest.approx(from_totals.epsilon)
        assert bound.delta == pytest.approx(5e-7 + 1e-8)
        # The converted bound beats basic composition on many small charges.
        assert bound.epsilon < 0.5
        eps_rows, delta_rows = f.loss_bound_batch(totals.reshape(1, -1))
        assert float(eps_rows[0]) == pytest.approx(bound.epsilon)
        assert float(delta_rows[0]) == pytest.approx(bound.delta)

    def test_penalty_matches_rdp_to_epsilon(self):
        """The filter's conversion must be the exact arithmetic of
        rdp_to_epsilon (shared helper, no reimplementation drift)."""
        f = RenyiCompositionFilter(1.0, 1e-6, orders=ORDERS_SMALL)
        assert np.array_equal(
            f._penalty, rdp_epsilon_penalties(ORDERS_SMALL, 5e-7)
        )


class TestSupersetOfStrongComposition:
    """At equal (epsilon_global, delta_global) targets and default slack
    split, every Gaussian-workload charge the strong filter admits, the
    Renyi filter admits too (its conversion dominates Rogers' constant in
    the small-epsilon regime the platform operates in)."""

    @settings(max_examples=120, deadline=None)
    @given(
        history=st.lists(
            st.builds(
                PrivacyBudget,
                st.floats(min_value=0.001, max_value=0.25),
                st.floats(min_value=0.0, max_value=2e-9),
            ),
            max_size=30,
        ),
        candidate_eps=st.floats(min_value=0.001, max_value=0.3),
    )
    def test_strong_admit_implies_renyi_admit(self, history, candidate_eps):
        strong = StrongCompositionFilter(1.0, 1e-6)
        renyi = RenyiCompositionFilter(1.0, 1e-6)
        candidate = PrivacyBudget(candidate_eps, 1e-9)
        s_totals = tuple(replay_totals(strong, history))
        r_totals = tuple(replay_totals(renyi, history))
        if strong.admits((), candidate, totals=s_totals):
            assert renyi.admits((), candidate, totals=r_totals)

    def test_admission_counts_ordering(self):
        """Deterministic spot check of the bench's headline ordering."""
        for eps in (0.005, 0.02, 0.05):
            charge = PrivacyBudget(eps, 1e-9)
            renyi = count_admitted(RenyiCompositionFilter(1.0, 1e-6), charge)
            strong = count_admitted(StrongCompositionFilter(1.0, 1e-6), charge)
            assert renyi >= strong


@pytest.fixture
def renyi_accountant():
    acc = BlockAccountant(
        1.0,
        1e-6,
        filter_factory=lambda e, d: RenyiCompositionFilter(e, d, orders=ORDERS_SMALL),
    )
    acc.register_blocks(range(6))
    return acc


def store_state(acc: BlockAccountant):
    return (
        acc.store.totals.tobytes(),
        acc.store.live.tobytes(),
        acc.store.charge_counts.tobytes(),
        {k: list(acc.ledger(k).history) for k in acc.block_keys},
        [(r.budget, r.block_keys, r.label) for r in acc.charges],
    )


class TestRenyiAccountant:
    def test_store_is_order_extended(self, renyi_accountant):
        acc = renyi_accountant
        assert acc.store.width == TOTALS_BASE + len(ORDERS_SMALL)
        assert acc.store.totals.shape == (6, acc.store.width)
        acc.charge([0], PrivacyBudget(0.1, 0.0))
        row = acc.store.totals[0]
        assert np.array_equal(row[TOTALS_BASE:], pure_dp_rdp(0.1, ORDERS_SMALL))
        assert tuple(acc.ledger(0).totals) == tuple(row)

    def test_vectorized_scans_enabled(self, renyi_accountant):
        assert renyi_accountant.staging_supported
        assert renyi_accountant.usable_blocks() == list(range(6))

    def test_charge_many_matches_sequential(self):
        make = lambda: BlockAccountant(
            1.0,
            1e-6,
            filter_factory=lambda e, d: RenyiCompositionFilter(e, d, orders=ORDERS_SMALL),
        )
        batched, sequential = make(), make()
        for acc in (batched, sequential):
            acc.register_blocks(range(6))
        requests = [
            ([0, 1, 2], PrivacyBudget(0.05, 1e-9), "a"),
            ([1, 2, 3], PrivacyBudget(0.1, 0.0), "b"),
            ([0, 5], gaussian_mechanism_budget(0.01, 2.0, 100, 1e-8, orders=ORDERS_SMALL), "g"),
            ([1], PrivacyBudget(0.2, 1e-9), "c"),
        ]
        batched.charge_many(requests)
        for keys, budget, label in requests:
            sequential.charge(keys, budget, label=label)
        assert store_state(batched) == store_state(sequential)

    def test_charge_many_rollback_is_byte_exact(self, renyi_accountant):
        acc = renyi_accountant
        acc.charge([0, 1], PrivacyBudget(0.3, 1e-8))
        before = store_state(acc)
        with pytest.raises(BudgetExceededError):
            acc.charge_many(
                [
                    ([0, 2], PrivacyBudget(0.1, 0.0)),
                    ([3], PrivacyBudget(0.2, 0.0)),
                    ([1, 4], PrivacyBudget(0.95, 0.0)),  # refused on 1
                ]
            )
        assert store_state(acc) == before

    def test_staging_matches_sequential(self):
        make = lambda: BlockAccountant(
            1.0,
            1e-6,
            filter_factory=lambda e, d: RenyiCompositionFilter(e, d, orders=ORDERS_SMALL),
        )
        staged, sequential = make(), make()
        for acc in (staged, sequential):
            acc.register_blocks(range(4))
        requests = [
            ([0, 1], PrivacyBudget(0.2, 1e-9), "a"),
            ([1, 2], PrivacyBudget(0.3, 0.0), "b"),
        ]
        staged.begin_staging()
        for keys, budget, label in requests:
            staged.stage_charge(keys, budget, label)
        # Staged reads see the per-order accumulation.
        assert staged.max_epsilon([1]) < staged.max_epsilon([3])
        staged.charge_many(staged.pop_staged())
        for keys, budget, label in requests:
            sequential.charge(keys, budget, label=label)
        assert store_state(staged) == store_state(sequential)

    def test_stage_refusal_stages_nothing(self, renyi_accountant):
        acc = renyi_accountant
        acc.begin_staging()
        acc.stage_charge([0], PrivacyBudget(0.9, 0.0))
        with pytest.raises(BudgetExceededError):
            acc.stage_charge([0], PrivacyBudget(0.5, 0.0))
        committed = acc.charge_many(acc.pop_staged())
        assert len(committed) == 1

    def test_stream_loss_bound_uses_conversion(self, renyi_accountant):
        acc = renyi_accountant
        assert acc.stream_loss_bound() == ZERO_BUDGET
        for _ in range(8):
            acc.charge([0, 1], PrivacyBudget(0.05, 1e-9))
        bound = acc.stream_loss_bound()
        expected = acc.ledger(0).loss_bound()
        assert bound.epsilon == pytest.approx(expected.epsilon)
        assert bound.delta == pytest.approx(expected.delta)
        assert bound.epsilon < 0.4  # converted curve beats the 0.4 basic sum

    def test_session_delta_rationed_from_unreserved_share(self):
        acc_access_sage = Sage(
            CountStreamSource(1000, scale=1000),
            seed=0,
            filter_factory=RenyiCompositionFilter,
        )
        entry = acc_access_sage.submit(
            OraclePipeline(name="p", n_at_eps1=1000.0),
            AdaptiveConfig(max_attempts=10),
        )
        # delta_global 1e-6, conversion reserve 5e-7 -> 5e-8 per attempt.
        assert entry.session.delta == pytest.approx(5e-8)


class TestRenyiPlatformDrive:
    """An RDP-filtered stream is a first-class citizen of the batched
    propose/settle protocol: staged hourly commits, no sequential fallback,
    byte-identical trajectories to the sequential reference drive."""

    def _build(self, batched, trusted=False):
        sage = Sage(
            CountStreamSource(4000, scale=1000),
            seed=5,
            filter_factory=RenyiCompositionFilter,
            batched_advance=batched,
            trusted_staged_commit=trusted,
        )
        for i, c in enumerate((3_000.0, 12_000.0, 50_000.0)):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=c),
                AdaptiveConfig(max_attempts=16),
            )
        sage.run_until_quiet(max_hours=40)
        return sage

    def _fingerprint(self, sage):
        sage.access.accountant.retired_blocks()
        return (
            sage.access.accountant.store.totals.tobytes(),
            sage.access.accountant.store.live.tobytes(),
            sage.reservation_table.matrix.tobytes(),
            sage.reservation_table.free_epsilon.tobytes(),
            [p.status for p in sage.pipelines],
            [p.release_time_hours for p in sage.pipelines],
            [
                (a.attempt, a.window, a.budget.epsilon, a.budget.delta)
                for p in sage.pipelines
                for a in p.session.attempts
            ],
        )

    def test_staged_path_supported(self):
        sage = Sage(
            CountStreamSource(1000, scale=1000),
            seed=0,
            filter_factory=RenyiCompositionFilter,
        )
        assert sage.access.supports_staged_requests

    def test_batched_equals_sequential(self):
        assert self._fingerprint(self._build(True)) == self._fingerprint(
            self._build(False)
        )

    def test_trusted_commit_equals_validating_commit(self):
        assert self._fingerprint(self._build(True, trusted=True)) == (
            self._fingerprint(self._build(True, trusted=False))
        )

    def test_one_batch_per_hour(self):
        sage = Sage(
            CountStreamSource(4000, scale=1000),
            seed=3,
            filter_factory=RenyiCompositionFilter,
        )
        sage.submit(
            OraclePipeline(name="p", n_at_eps1=10_000.0),
            AdaptiveConfig(max_attempts=8),
        )
        counts = {"request": 0, "request_many": 0}
        orig_request, orig_many = sage.access.request, sage.access.request_many

        def counting_request(*args, **kwargs):
            counts["request"] += 1
            return orig_request(*args, **kwargs)

        def counting_many(*args, **kwargs):
            counts["request_many"] += 1
            return orig_many(*args, **kwargs)

        sage.access.request = counting_request
        sage.access.request_many = counting_many
        for _ in range(12):
            before = counts["request_many"]
            charged_before = len(sage.access.accountant.charges)
            sage.advance(1.0)
            committed = len(sage.access.accountant.charges) - charged_before
            assert counts["request"] == 0
            assert counts["request_many"] - before == (1 if committed else 0)


class TestPrunedOrdersPreset:
    """The ~16-order pruned grid: 4.5x narrower store rows at a bounded
    epsilon-tightness loss versus DEFAULT_ORDERS."""

    # Representative DP-SGD configurations (the repo's own calibration /
    # bench regimes) and conversion deltas.
    GAUSSIAN_WORKLOADS = [
        (0.01, 1.1, 1000), (0.01, 0.8, 200), (0.001, 0.6, 5000),
        (0.02, 2.0, 10000), (0.005, 1.5, 3000), (0.05, 3.0, 2000),
        (1.0, 4.0, 50),
    ]
    DELTAS = (1e-5, 1e-6, 1e-9)

    def test_preset_resolves_and_shrinks_store(self):
        from repro.dp.rdp import DEFAULT_ORDERS, PRUNED_ORDERS

        dense = RenyiCompositionFilter(1.0, 1e-6)
        pruned = RenyiCompositionFilter(1.0, 1e-6, orders="pruned")
        named_default = RenyiCompositionFilter(1.0, 1e-6, orders="default")
        assert named_default.orders == dense.orders == DEFAULT_ORDERS
        assert pruned.orders == PRUNED_ORDERS
        assert len(PRUNED_ORDERS) <= 18
        assert dense.totals_width == 4 + 69 == 73
        assert pruned.totals_width == 4 + len(PRUNED_ORDERS)
        acc = BlockAccountant(
            1.0, 1e-6,
            filter_factory=lambda e, d: RenyiCompositionFilter(e, d, orders="pruned"),
        )
        acc.register_block("b")
        assert acc.store.width == pruned.totals_width
        with pytest.raises(InvalidBudgetError):
            RenyiCompositionFilter(1.0, 1e-6, orders="dense-ish")

    def test_gaussian_conversion_tightness_bound(self):
        """Pruned epsilon within 2% of the dense grid on typical DP-SGD
        regimes; never worse than 40% even at the subsampled-RDP cliff
        (the curve's minimum hugs a blow-up point, so a sparse grid's
        nearest order below the cliff pays the gap)."""
        from repro.dp.rdp import DEFAULT_ORDERS, PRUNED_ORDERS, rdp_to_epsilon

        ratios = []
        for q, sigma, steps in self.GAUSSIAN_WORKLOADS:
            for delta in self.DELTAS:
                dense_eps, _ = rdp_to_epsilon(
                    compute_rdp(q, sigma, steps, DEFAULT_ORDERS), DEFAULT_ORDERS, delta
                )
                pruned_eps, _ = rdp_to_epsilon(
                    compute_rdp(q, sigma, steps, PRUNED_ORDERS), PRUNED_ORDERS, delta
                )
                assert pruned_eps >= dense_eps - 1e-12  # never tighter than dense
                if dense_eps > 0.05:
                    ratios.append(pruned_eps / dense_eps)
        assert max(ratios) <= 1.40
        assert float(np.median(ratios)) <= 1.02

    def test_pure_dp_accumulation_tightness_bound(self):
        """Small (eps, delta) charges (the pure-DP reduction): the pruned
        grid stays within 3% across representative accumulations."""
        from repro.dp.rdp import DEFAULT_ORDERS, PRUNED_ORDERS, rdp_to_epsilon

        for eps_c, k in [(0.01, 100), (0.05, 40), (0.001, 2000), (0.1, 10)]:
            for delta in (1e-6, 1e-9):
                dense_eps, _ = rdp_to_epsilon(
                    k * pure_dp_rdp(eps_c, DEFAULT_ORDERS), DEFAULT_ORDERS, delta
                )
                pruned_eps, _ = rdp_to_epsilon(
                    k * pure_dp_rdp(eps_c, PRUNED_ORDERS), PRUNED_ORDERS, delta
                )
                assert dense_eps - 1e-12 <= pruned_eps <= 1.03 * dense_eps + 1e-9

    def test_pruned_filter_admission_close_to_dense(self):
        """Charges admitted per block: the pruned filter admits nearly the
        dense filter's count on the Renyi PR's headline workloads, and
        still far more than strong composition."""
        dense = RenyiCompositionFilter(1.0, 1e-6)
        pruned = RenyiCompositionFilter(1.0, 1e-6, orders="pruned")
        strong = StrongCompositionFilter(1.0, 1e-6)
        plain = PrivacyBudget(0.01, 1e-9)
        gaussian = gaussian_mechanism_budget(0.01, 4.0, 100, 1e-9)
        for charge in (plain, gaussian):
            n_dense = count_admitted(dense, charge)
            n_pruned = count_admitted(pruned, charge)
            n_strong = count_admitted(strong, charge)
            assert n_pruned >= 0.9 * n_dense
            assert n_pruned > n_strong

    def test_pruned_scalar_batch_grid_parity(self):
        """The pruned filter rides the same scalar/batch contract."""
        filt = RenyiCompositionFilter(1.0, 1e-6, orders="pruned")
        rng = np.random.default_rng(3)
        histories = [
            [PrivacyBudget(float(rng.uniform(0.005, 0.1)), 1e-10) for _ in range(k)]
            for k in (0, 1, 5, 20)
        ]
        matrix = np.stack([replay_totals(filt, h) for h in histories])
        for charge in (PrivacyBudget(0.05, 1e-9), gaussian_mechanism_budget(0.02, 3.0, 50, 1e-9)):
            batch = filt.admits_batch(matrix, charge)
            scalar = [filt.admits(h, charge) for h in histories]
            assert batch.tolist() == scalar
        assert filt.max_epsilon_batch(matrix, 1e-9) == pytest.approx(
            min(filt.max_epsilon(h, 1e-9) for h in histories), abs=1e-9
        )
