"""The durable accountant: WAL framing, snapshots, and crash recovery.

The headline property is the crash matrix: a process killed at *every*
named crash point of the hourly drive -- before, inside, and after the
commit point -- recovers to a state whose digest is byte-identical to an
uninterrupted run at the recovered hour, for single-store and sharded
accountants and for basic and pruned-Renyi composition, and then stays in
lockstep with the clean run.  Replay goes through the live ``charge_many``
path (one ``request_many`` per recorded hour); a corrupt WAL record is a
typed error naming the file and offset, never a silent replay.
"""

import os
import struct
import zlib

import pytest

from repro.core import durability, faults
from repro.core.adaptive import AdaptiveConfig
from repro.core.filters import RenyiCompositionFilter
from repro.core.platform import Sage
from repro.core.sharding import sharded_accountant_factory
from repro.errors import (
    DurabilityError,
    RecoveryError,
    SnapshotMismatchError,
    WalCorruptionError,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline

PRUNED_RENYI = lambda e, d: RenyiCompositionFilter(e, d, orders="pruned")  # noqa: E731

VARIANTS = {
    "single-basic": {},
    "sharded-basic": {"accountant_factory": sharded_accountant_factory(4)},
    "single-pruned-renyi": {"filter_factory": PRUNED_RENYI},
    "sharded-pruned-renyi": {
        "accountant_factory": sharded_accountant_factory(4),
        "filter_factory": PRUNED_RENYI,
    },
}

# Committed hours recovered relative to the crashed hour's index: points
# before the WAL append lose the hour (it was never durable), points at or
# after the append recover it -- the record, not the in-memory commit, is
# the durability boundary.
CRASH_OFFSETS = {
    "hour.opened": 0,
    "settle.mid_session": 0,
    "wal.before_append": 0,
    "wal.after_append": 1,
    "charge.between_validate_and_commit": 1,
    "hour.after_commit": 1,
    "snapshot.mid_write": 1,
}


def _build(variant, wal_dir=None, snapshot_every=0):
    return Sage(
        CountStreamSource(4000, scale=1000),
        seed=5,
        wal_dir=wal_dir,
        snapshot_every=snapshot_every,
        **VARIANTS[variant],
    )


def _pipes():
    return [
        (OraclePipeline(name=f"p{i}", n_at_eps1=c), AdaptiveConfig(max_attempts=16))
        for i, c in enumerate((3_000.0, 12_000.0, 50_000.0))
    ]


def _clean_digests(variant, hours=12):
    """Per-hour state digests of an uninterrupted (volatile) run."""
    sage = _build(variant)
    for pipeline, config in _pipes():
        sage.submit(pipeline, config)
    digests = [durability.state_digest(sage)]
    for _ in range(hours):
        sage.advance(1.0)
        digests.append(durability.state_digest(sage))
    sage.close()
    return digests


@pytest.fixture(autouse=True)
def _clean_fault_registry():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# WAL file format: framing, torn tails, corruption
# ----------------------------------------------------------------------
class TestWalFormat:
    def test_roundtrip_records(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 0, "payload": list(range(50))})
        writer.commit_hour(0, 1234)
        writer.close()
        scan = durability.read_wal(path)
        assert not scan.truncated_tail
        assert [r["kind"] for r in scan.records] == ["hour", "commit"]
        assert scan.records[0]["payload"] == list(range(50))
        assert scan.records[1]["digest"] == 1234

    def test_missing_file_is_empty_scan(self, tmp_path):
        scan = durability.read_wal(tmp_path / "absent.wal")
        assert scan.records == [] and not scan.truncated_tail

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 0})
        writer.commit_hour(0, 7)
        writer.close()
        whole = path.read_bytes()
        # Chop mid-way through the trailing record: a mid-append crash.
        path.write_bytes(whole[:-5])
        scan = durability.read_wal(path)
        assert scan.truncated_tail
        assert [r["kind"] for r in scan.records] == ["hour"]

    def test_corrupt_record_names_file_and_offset(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 0})
        writer.commit_hour(0, 7)
        writer.close()
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the first record (past magic + header).
        offset = len(durability.WAL_MAGIC)
        data[offset + 8 + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError) as err:
            durability.read_wal(path)
        assert str(path) in str(err.value)
        assert err.value.offset == offset
        assert err.value.record == 0
        assert "CRC" in str(err.value)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "charge.wal"
        path.write_bytes(b"NOTAWAL0" + b"x" * 32)
        with pytest.raises(WalCorruptionError) as err:
            durability.read_wal(path)
        assert err.value.offset == 0

    def test_writer_repairs_torn_tail_on_reopen(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 0})
        writer.commit_hour(0, 7)
        writer.close()
        good_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00")  # torn partial frame
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 1})
        writer.commit_hour(1, 8)
        writer.close()
        assert path.stat().st_size > good_size
        scan = durability.read_wal(path)
        assert [r.get("hour_index") for r in scan.records] == [0, 0, 1, 1]

    def test_abort_hour_truncates_partial_hour(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = durability.WalWriter(path)
        writer.begin_hour()
        writer.append_hour({"hour_index": 0})
        writer.commit_hour(0, 7)
        size_before = path.stat().st_size
        writer.begin_hour()
        writer.append_hour({"hour_index": 1})
        writer.abort_hour()
        writer.close()
        assert path.stat().st_size == size_before
        assert len(durability.read_wal(path).records) == 2

    def test_trailing_hour_without_commit_pairs_with_none(self):
        pairs = durability.pair_hour_records(
            [
                {"kind": "hour", "hour_index": 0},
                {"kind": "commit", "hour_index": 0, "digest": 5},
                {"kind": "hour", "hour_index": 1},
            ]
        )
        assert [(r["hour_index"], d) for r, d in pairs] == [(0, 5), (1, None)]


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_prunes_to_keep(self, tmp_path):
        store = durability.SnapshotStore(tmp_path, keep=2)
        for hour in range(5):
            store.write(hour, {"hour_index": hour})
        names = [p.name for p in store.snapshot_paths()]
        assert names == ["snapshot-00000003.snap", "snapshot-00000004.snap"]

    def test_latest_skips_corrupt_newest(self, tmp_path):
        store = durability.SnapshotStore(tmp_path, keep=3)
        store.write(1, {"hour_index": 1})
        newest = store.write(2, {"hour_index": 2})
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        hour, payload, skipped = store.latest()
        assert hour == 1 and payload["hour_index"] == 1
        assert skipped == [newest]

    def test_load_corrupt_names_file(self, tmp_path):
        store = durability.SnapshotStore(tmp_path)
        path = store.write(3, {"hour_index": 3})
        path.write_bytes(b"garbage")
        with pytest.raises(SnapshotMismatchError) as err:
            store.load(path)
        assert str(path) in str(err.value)


# ----------------------------------------------------------------------
# WAL compaction
# ----------------------------------------------------------------------
class TestWalCompaction:
    def _committed_hours(self, path):
        scan = durability.read_wal(path)
        return [r["hour_index"] for r in scan.records if r["kind"] == "hour"]

    def _fill(self, path, hours):
        writer = durability.WalWriter(path)
        for hour in range(hours):
            writer.begin_hour()
            writer.append_hour({"hour_index": hour, "n_entries": 0})
            writer.commit_hour(hour, 1000 + hour)
        return writer

    def test_compact_drops_hours_before_horizon(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = self._fill(path, 6)
        assert writer.compact(3) == 6  # hour + commit records for 0..2
        assert self._committed_hours(path) == [3, 4, 5]
        # The compacted log keeps accepting appends on the reopened handle.
        writer.begin_hour()
        writer.append_hour({"hour_index": 6, "n_entries": 0})
        writer.commit_hour(6, 1006)
        writer.close()
        scan = durability.read_wal(path)
        assert not scan.truncated_tail
        assert self._committed_hours(path) == [3, 4, 5, 6]

    def test_compact_refuses_while_hour_open(self, tmp_path):
        writer = durability.WalWriter(tmp_path / "charge.wal")
        writer.begin_hour()
        with pytest.raises(RecoveryError, match="compact"):
            writer.compact(1)
        writer.abort_hour()
        writer.close()

    def test_compact_without_drops_leaves_bytes_untouched(self, tmp_path):
        path = tmp_path / "charge.wal"
        writer = self._fill(path, 4)
        writer.compact(2)
        before = path.read_bytes()
        assert writer.compact(0) == 0
        assert writer.compact(2) == 0  # horizon already applied
        writer.close()
        assert path.read_bytes() == before

    def test_snapshot_write_compacts_to_oldest_retained(self, tmp_path):
        sage = _build("single-basic", wal_dir=tmp_path, snapshot_every=2)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for _ in range(8):
            sage.advance(1.0)
        # Snapshots at hours 2,4,6,8 pruned to keep=3 leave {4,6,8}.
        oldest = sage._snapshots.oldest_retained_hour()
        assert oldest == 4
        hours = self._committed_hours(durability.wal_path(tmp_path))
        assert hours == list(range(oldest, 8))
        sage.close()

    @pytest.mark.parametrize("variant", ["single-basic", "sharded-basic"])
    def test_recovery_from_compacted_wal_is_byte_identical(self, variant, tmp_path):
        digests = _clean_digests(variant, hours=10)
        sage = _build(variant, wal_dir=tmp_path, snapshot_every=2)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for _ in range(8):
            sage.advance(1.0)
        sage.close()
        assert min(self._committed_hours(durability.wal_path(tmp_path))) == 4
        recovered = _build(variant, wal_dir=tmp_path, snapshot_every=2)
        report = recovered.recover(_pipes())
        assert report.hours_committed == 8
        assert report.snapshot_hour == 8 and report.replayed_hours == 0
        assert durability.state_digest(recovered) == digests[8]
        for hour in (9, 10):
            recovered.advance(1.0)
            assert durability.state_digest(recovered) == digests[hour]
        recovered.close()

    def test_corrupt_newest_snapshot_falls_back_within_horizon(self, tmp_path):
        # The compaction horizon is the *oldest retained* snapshot, so the
        # fallback to an older snapshot still finds every hour it needs.
        digests = _clean_digests("single-basic", hours=8)
        sage = _build("single-basic", wal_dir=tmp_path, snapshot_every=2)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for _ in range(8):
            sage.advance(1.0)
        sage.close()
        newest = sorted(tmp_path.glob("snapshot-*.snap"))[-1]
        data = bytearray(newest.read_bytes())
        data[-1] ^= 0xFF
        newest.write_bytes(bytes(data))
        recovered = _build("single-basic", wal_dir=tmp_path, snapshot_every=2)
        report = recovered.recover(_pipes())
        assert report.snapshots_skipped == 1
        assert report.snapshot_hour == 6 and report.replayed_hours == 2
        assert report.hours_committed == 8
        assert durability.state_digest(recovered) == digests[8]
        recovered.close()


# ----------------------------------------------------------------------
# Clean durable runs and recovery
# ----------------------------------------------------------------------
class TestDurableDrive:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_durable_run_matches_volatile_digests(self, variant, tmp_path):
        digests = _clean_digests(variant, hours=8)
        sage = _build(variant, wal_dir=tmp_path, snapshot_every=3)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for hour in range(8):
            sage.advance(1.0)
            assert durability.state_digest(sage) == digests[hour + 1]
        sage.close()

    @pytest.mark.parametrize("snapshot_every", [0, 3])
    def test_recover_reaches_clean_state_and_stays_in_lockstep(
        self, snapshot_every, tmp_path
    ):
        digests = _clean_digests("single-basic", hours=10)
        sage = _build("single-basic", wal_dir=tmp_path, snapshot_every=snapshot_every)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for _ in range(8):
            sage.advance(1.0)
        sage.close()
        recovered = _build(
            "single-basic", wal_dir=tmp_path, snapshot_every=snapshot_every
        )
        report = recovered.recover(_pipes())
        assert report.hours_committed == 8
        if snapshot_every:
            assert report.snapshot_hour == 6 and report.replayed_hours == 2
        else:
            assert report.snapshot_hour is None and report.replayed_hours == 8
        assert durability.state_digest(recovered) == digests[8]
        for hour in (9, 10):
            recovered.advance(1.0)
            assert durability.state_digest(recovered) == digests[hour]
        recovered.close()

    def test_fresh_pipelines_resubmitted_when_log_is_empty(self, tmp_path):
        sage = _build("single-basic", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("hour.opened"):
                sage.advance(1.0)
        recovered = _build("single-basic", wal_dir=tmp_path)
        report = recovered.recover(_pipes())
        assert report.hours_committed == 0
        assert report.fresh_pipelines == 3
        assert [p.name for p in recovered.pipelines] == ["p0", "p1", "p2"]
        assert durability.state_digest(recovered) == _clean_digests(
            "single-basic", hours=0
        )[0]
        recovered.close()
        sage.close()

    def test_advance_before_recover_refuses(self, tmp_path):
        sage = _build("single-basic", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        sage.advance(1.0)
        sage.close()
        stale = _build("single-basic", wal_dir=tmp_path)
        with pytest.raises(RecoveryError, match="recover"):
            stale.advance(1.0)
        stale.close()

    def test_recover_requires_fresh_platform(self, tmp_path):
        sage = _build("single-basic", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        sage.advance(1.0)
        with pytest.raises(RecoveryError, match="fresh"):
            sage.recover(_pipes())
        sage.close()

    def test_recover_without_wal_dir_refuses(self):
        sage = _build("single-basic")
        with pytest.raises(RecoveryError, match="wal_dir"):
            sage.recover(_pipes())
        sage.close()

    def test_durable_mode_requires_staged_drive(self, tmp_path):
        with pytest.raises(DurabilityError, match="staged"):
            Sage(
                CountStreamSource(4000, scale=1000),
                seed=5,
                wal_dir=tmp_path,
                batched_advance=False,
            )

    def test_corrupt_wal_record_is_never_replayed(self, tmp_path):
        sage = _build("single-basic", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        for _ in range(3):
            sage.advance(1.0)
        sage.close()
        path = durability.wal_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(durability.WAL_MAGIC) + 8 + 4] ^= 0xFF
        path.write_bytes(bytes(data))
        recovered = _build("single-basic", wal_dir=tmp_path)
        with pytest.raises(WalCorruptionError) as err:
            recovered.recover(_pipes())
        assert err.value.record == 0
        # Nothing was replayed off the bad log.
        assert recovered.hours_committed == 0
        recovered.close()

    def test_replay_detects_wrong_platform_config(self, tmp_path):
        sage = _build("single-pruned-renyi", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        sage.advance(1.0)
        sage.close()
        # Basic composition has a different ledger schema width.
        recovered = _build("single-basic", wal_dir=tmp_path)
        with pytest.raises(RecoveryError, match="schema width"):
            recovered.recover(_pipes())
        recovered.close()


# ----------------------------------------------------------------------
# The crash matrix (the issue's acceptance property)
# ----------------------------------------------------------------------
class TestCrashMatrix:
    @pytest.mark.parametrize("point", sorted(CRASH_OFFSETS))
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_kill_and_recover_is_byte_identical(self, variant, point, tmp_path):
        """Kill the drive at every crash point; the recovered platform's
        digest equals the clean run's at the recovered hour, and the next
        hours stay in lockstep."""
        digests = _clean_digests(variant, hours=10)
        snapshot_every = 4 if point == "snapshot.mid_write" else 0
        sage = _build(variant, wal_dir=tmp_path, snapshot_every=snapshot_every)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        clean_hours = 0
        with pytest.raises(faults.InjectedCrash):
            # skip=1 on always-firing points crashes hour 1, not hour 0 --
            # exercising rollback/replay with real prior state on disk.
            skip = 1 if CRASH_OFFSETS[point] == 0 or point == "hour.after_commit" else 0
            with faults.armed_crash(point, skip=skip):
                for _ in range(9):
                    sage.advance(1.0)
                    clean_hours += 1
        # The dead process gets no cleanup: recovery works from disk alone.
        expected = clean_hours + CRASH_OFFSETS[point]
        recovered = _build(variant, wal_dir=tmp_path, snapshot_every=snapshot_every)
        report = recovered.recover(_pipes())
        assert report.hours_committed == expected
        assert durability.state_digest(recovered) == digests[expected]
        recovered.advance(1.0)
        assert durability.state_digest(recovered) == digests[expected + 1]
        recovered.close()
        sage.close()

    def test_double_crash_then_recover(self, tmp_path):
        """A second crash during a recovered run still recovers cleanly."""
        digests = _clean_digests("single-basic", hours=10)
        sage = _build("single-basic", wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("wal.after_append", skip=1):
                for _ in range(9):
                    sage.advance(1.0)
        first = _build("single-basic", wal_dir=tmp_path)
        first.recover(_pipes())
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("hour.opened", skip=1):
                for _ in range(5):
                    first.advance(1.0)
        hours = first.hours_committed
        second = _build("single-basic", wal_dir=tmp_path)
        report = second.recover(_pipes())
        assert report.hours_committed == hours
        assert durability.state_digest(second) == digests[hours]
        second.close()
        first.close()
        sage.close()
