"""DPStatisticValidator (Appendix B.3)."""

import numpy as np
import pytest

from repro.core.validation.outcomes import Outcome
from repro.core.validation.statistics import DPStatisticValidator
from repro.errors import ValidationError


class TestConstruction:
    def test_invalid_target(self):
        with pytest.raises(ValidationError):
            DPStatisticValidator(0.0, 60.0)

    def test_invalid_range(self):
        with pytest.raises(ValidationError):
            DPStatisticValidator(1.0, 0.0)


class TestReleaseAndValidate:
    def test_accepts_with_enough_data(self, rng):
        validator = DPStatisticValidator(target=2.0, value_range=60.0)
        values = rng.uniform(20, 40, size=100_000)
        mean, result = validator.release_and_validate(values, 1.0, rng)
        assert result.outcome is Outcome.ACCEPT
        assert abs(mean - float(values.mean())) < 2.0

    def test_retries_with_scarce_data(self, rng):
        validator = DPStatisticValidator(target=1.0, value_range=60.0)
        mean, result = validator.release_and_validate(
            rng.uniform(20, 40, size=200), 0.5, rng
        )
        assert result.outcome is Outcome.RETRY

    def test_released_mean_within_range(self, rng):
        validator = DPStatisticValidator(target=5.0, value_range=10.0)
        for _ in range(30):
            mean, _ = validator.release_and_validate(np.full(50, 9.0), 0.2, rng)
            assert 0.0 <= mean <= 10.0

    def test_error_guarantee_on_accept(self):
        """ACCEPTed releases are within target of the population mean with
        frequency >= 1 - eta (the §B.3 guarantee, law of large numbers)."""
        eta, target = 0.1, 1.5
        population_mean = 30.0
        violations = accepted = 0
        for seed in range(200):
            rng = np.random.default_rng(seed)
            values = rng.uniform(20, 40, size=40_000)  # mean 30
            validator = DPStatisticValidator(target, 60.0, confidence=1 - eta)
            mean, result = validator.release_and_validate(values, 1.0, rng)
            if result.outcome is Outcome.ACCEPT:
                accepted += 1
                violations += abs(mean - population_mean) > target
        assert accepted > 0
        assert violations / max(accepted, 1) <= eta

    def test_tighter_target_needs_more_data(self):
        """Find the acceptance sample size for two targets; the tighter one
        must need more."""
        def required_n(target):
            for n in (500, 2_000, 8_000, 32_000, 128_000, 512_000):
                rng = np.random.default_rng(0)
                validator = DPStatisticValidator(target, 60.0)
                _, result = validator.release_and_validate(
                    rng.uniform(25, 35, size=n), 1.0, rng
                )
                if result.outcome is Outcome.ACCEPT:
                    return n
            return float("inf")

        assert required_n(1.0) > required_n(10.0)

    def test_empty_values_raise(self, rng):
        with pytest.raises(ValidationError):
            DPStatisticValidator(1.0, 60.0).release_and_validate(np.array([]), 1.0, rng)

    def test_budget_pure_epsilon(self, rng):
        validator = DPStatisticValidator(5.0, 60.0)
        _, result = validator.release_and_validate(np.full(1000, 30.0), 0.4, rng)
        assert result.budget_spent.epsilon == 0.4
        assert result.budget_spent.delta == 0.0
