"""Metric functions."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.ml.metrics import (
    absolute_errors,
    accuracy,
    log_loss,
    log_losses,
    mae,
    mse,
    squared_errors,
    zero_one_losses,
)


class TestRegressionMetrics:
    def test_squared_errors(self):
        out = squared_errors([1.0, 2.0], [1.5, 1.0])
        assert np.allclose(out, [0.25, 1.0])

    def test_mse_perfect(self):
        assert mse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_mse_matches_mean_of_squared(self):
        y = np.array([0.0, 1.0, 2.0])
        p = np.array([0.5, 0.5, 0.5])
        assert mse(y, p) == pytest.approx(np.mean((y - p) ** 2))

    def test_mae(self):
        assert mae([0.0, 2.0], [1.0, 0.0]) == 1.5

    def test_absolute_errors_nonnegative(self, rng):
        a, b = rng.normal(size=10), rng.normal(size=10)
        assert np.all(absolute_errors(a, b) >= 0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            mse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(DataError):
            mse([], [])


class TestClassificationMetrics:
    def test_accuracy_perfect(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_accuracy_half(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 1]) == 0.5

    def test_zero_one_losses(self):
        out = zero_one_losses([1, 0], [0, 0])
        assert np.array_equal(out, [1.0, 0.0])

    def test_log_loss_confident_correct_is_small(self):
        assert log_loss([1.0, 0.0], [0.999, 0.001]) < 0.01

    def test_log_loss_confident_wrong_is_large(self):
        assert log_loss([1.0], [0.001]) > 5.0

    def test_log_losses_clip_extremes(self):
        # probabilities of exactly 0/1 must not produce inf
        out = log_losses([1.0, 0.0], [0.0, 1.0])
        assert np.all(np.isfinite(out))

    def test_log_loss_of_base_rate_equals_entropy(self):
        y = np.array([1.0] * 30 + [0.0] * 70)
        p = np.full(100, 0.3)
        expected = -(0.3 * np.log(0.3) + 0.7 * np.log(0.7))
        assert log_loss(y, p) == pytest.approx(expected, rel=1e-9)
