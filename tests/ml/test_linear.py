"""Ridge regression and AdaSSP."""

import numpy as np
import pytest

from repro.dp.budget import PrivacyBudget
from repro.errors import DataError
from repro.ml.linear import AdaSSPRegressor, RidgeRegression
from repro.ml.metrics import mse


def make_regression(rng, n=5000, d=5, noise=0.02, scale=0.3):
    w = rng.normal(size=d) * scale
    X = rng.normal(size=(n, d)) / np.sqrt(d)  # rows roughly unit norm
    y = X @ w + noise * rng.normal(size=n)
    return X, y, w


class TestRidge:
    def test_exact_on_noiseless(self, rng):
        X, y, w = make_regression(rng, noise=0.0)
        model = RidgeRegression(regularization=1e-10).fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-6)

    def test_intercept_recovered(self, rng):
        X, y, _ = make_regression(rng, noise=0.0)
        model = RidgeRegression(regularization=1e-10).fit(X, y + 3.0)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-6)

    def test_no_intercept_mode(self, rng):
        X, y, w = make_regression(rng, noise=0.0)
        model = RidgeRegression(regularization=1e-10, fit_intercept=False).fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-6)

    def test_regularization_shrinks(self, rng):
        X, y, _ = make_regression(rng)
        small = RidgeRegression(regularization=1e-8).fit(X, y)
        large = RidgeRegression(regularization=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(DataError):
            RidgeRegression().predict(np.ones((2, 2)))

    def test_negative_regularization_rejected(self):
        with pytest.raises(DataError):
            RidgeRegression(regularization=-1.0)


class TestAdaSSP:
    def test_requires_approximate_dp(self):
        with pytest.raises(DataError):
            AdaSSPRegressor(PrivacyBudget(1.0, 0.0))

    def test_beats_naive_with_generous_budget(self, rng):
        X, y, _ = make_regression(rng, n=20_000)
        model = AdaSSPRegressor(PrivacyBudget(5.0, 1e-6), x_bound=1.5, y_bound=1.0)
        model.fit(X, y, rng)
        assert mse(y, model.predict(X)) < 0.5 * float(np.var(y))

    def test_more_data_helps(self):
        """The Fig. 5a story: DP regression closes the gap as n grows."""
        errors = []
        for n in (1000, 8000, 64_000):
            rng = np.random.default_rng(0)
            X, y, w = make_regression(rng, n=n, noise=0.05)
            model = AdaSSPRegressor(PrivacyBudget(1.0, 1e-6), x_bound=1.5, y_bound=1.0)
            model.fit(X, y, rng)
            errors.append(float(np.linalg.norm(model.coef_ - w)))
        assert errors[-1] < errors[0]

    def test_clips_inputs_to_bounds(self, rng):
        # Wild inputs must not break the privacy invariants (no exceptions,
        # finite output).
        X = rng.normal(size=(500, 3)) * 1e3
        y = rng.normal(size=500) * 1e3
        model = AdaSSPRegressor(PrivacyBudget(1.0, 1e-6), x_bound=1.0, y_bound=1.0)
        model.fit(X, y, rng)
        assert np.all(np.isfinite(model.coef_))

    def test_ridge_param_nonnegative(self, rng):
        X, y, _ = make_regression(rng, n=2000)
        model = AdaSSPRegressor(PrivacyBudget(0.1, 1e-6), x_bound=1.5, y_bound=1.0)
        model.fit(X, y, rng)
        assert model.ridge_ >= 0.0

    def test_tighter_budget_is_less_accurate(self):
        """Across seeds, eps=0.05 coefficients sit farther from the truth
        than eps=5 ones (the adaptive ridge shrinks hard at tiny budgets)."""
        errors = {}
        for eps in (0.05, 5.0):
            dists = []
            for seed in range(8):
                rng = np.random.default_rng(seed)
                X, y, w = make_regression(rng, n=2000, noise=0.0)
                m = AdaSSPRegressor(PrivacyBudget(eps, 1e-6), x_bound=1.5, y_bound=1.0)
                m.fit(X, y, np.random.default_rng(100 + seed))
                dists.append(float(np.linalg.norm(m.coef_ - w)))
            errors[eps] = float(np.mean(dists))
        assert errors[0.05] > errors[5.0]

    def test_predict_before_fit_raises(self):
        model = AdaSSPRegressor(PrivacyBudget(1.0, 1e-6))
        with pytest.raises(DataError):
            model.predict(np.ones((2, 2)))
