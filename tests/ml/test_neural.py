"""MLP: gradients (vs finite differences), ghost clipping, heads."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.ml.base import per_example_sq_norms
from repro.ml.neural import MLPModel, relu, sigmoid


def finite_difference_grads(model, params, X, y, eps=1e-6):
    """Central differences of the mean loss for every parameter."""
    grads = []
    for arr in params:
        g = np.zeros_like(arr)
        it = np.nditer(arr, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            old = arr[idx]
            arr[idx] = old + eps
            up = float(np.mean(model.per_example_gradients(params, X, y)[0]))
            arr[idx] = old - eps
            down = float(np.mean(model.per_example_gradients(params, X, y)[0]))
            arr[idx] = old
            g[idx] = (up - down) / (2 * eps)
        grads.append(g)
    return grads


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_symmetry(self):
        z = np.linspace(-50, 50, 101)
        s = sigmoid(z)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + sigmoid(-z), 1.0)

    def test_sigmoid_no_overflow(self):
        assert np.isfinite(sigmoid(np.array([-1000.0, 1000.0]))).all()


class TestConstruction:
    def test_bad_task(self):
        with pytest.raises(DataError):
            MLPModel((4,), task="multiclass")

    def test_bad_hidden(self):
        with pytest.raises(DataError):
            MLPModel((0,))

    def test_param_shapes(self, rng):
        m = MLPModel((8, 4))
        p = m.init_params(5, rng)
        shapes = [arr.shape for arr in p]
        assert shapes == [(5, 8), (8,), (8, 4), (4,), (4, 1), (1,)]

    def test_linear_model_shapes(self, rng):
        p = MLPModel(()).init_params(3, rng)
        assert [a.shape for a in p] == [(3, 1), (1,)]

    def test_init_deterministic(self):
        a = MLPModel((4,)).init_params(3, np.random.default_rng(0))
        b = MLPModel((4,)).init_params(3, np.random.default_rng(0))
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


@pytest.mark.parametrize("hidden,task", [((), "regression"), ((6,), "regression"),
                                         ((5, 3), "regression"), ((), "binary"),
                                         ((5, 3), "binary")])
class TestGradients:
    def test_mean_gradients_match_finite_differences(self, rng, hidden, task):
        m = MLPModel(hidden, task=task)
        X = rng.normal(size=(7, 4))
        y = (rng.random(7) > 0.5).astype(float) if task == "binary" else rng.normal(size=7)
        p = m.init_params(4, rng)
        _, analytic = m.mean_gradients(p, X, y)
        numeric = finite_difference_grads(m, p, X, y)
        for a, n in zip(analytic, numeric):
            assert np.allclose(a, n, atol=1e-7)

    def test_per_example_mean_equals_mean_gradients(self, rng, hidden, task):
        m = MLPModel(hidden, task=task)
        X = rng.normal(size=(9, 4))
        y = (rng.random(9) > 0.5).astype(float) if task == "binary" else rng.normal(size=9)
        p = m.init_params(4, rng)
        _, per_ex = m.per_example_gradients(p, X, y)
        _, mean = m.mean_gradients(p, X, y)
        for g, gm in zip(per_ex, mean):
            assert np.allclose(g.mean(axis=0), gm, atol=1e-12)

    def test_ghost_clipping_matches_materialized(self, rng, hidden, task):
        m = MLPModel(hidden, task=task)
        X = rng.normal(size=(11, 4))
        y = (rng.random(11) > 0.5).astype(float) if task == "binary" else rng.normal(size=11)
        p = m.init_params(4, rng)
        C = 0.5
        _, fast = m.clipped_gradient_sums(p, X, y, C)
        _, grads = m.per_example_gradients(p, X, y)
        factors = np.minimum(1.0, C / np.sqrt(per_example_sq_norms(grads)))
        for gf, g in zip(fast, grads):
            shape = (11,) + (1,) * (g.ndim - 1)
            assert np.allclose(gf, (g * factors.reshape(shape)).sum(axis=0), atol=1e-10)


class TestHeads:
    def test_binary_predictions_are_probabilities(self, rng):
        m = MLPModel((4,), task="binary")
        p = m.init_params(3, rng)
        out = m.predict_from(p, rng.normal(size=(20, 3)))
        assert np.all((out >= 0) & (out <= 1))

    def test_regression_predictions_unbounded(self, rng):
        m = MLPModel((), task="regression")
        p = [np.array([[10.0]]), np.array([0.0])]
        out = m.predict_from(p, np.array([[5.0]]))
        assert out[0] == pytest.approx(50.0)

    def test_label_shape_mismatch(self, rng):
        m = MLPModel(())
        p = m.init_params(2, rng)
        with pytest.raises(DataError):
            m.per_example_gradients(p, np.ones((3, 2)), np.ones(4))

    def test_clipping_caps_norms(self, rng):
        """Clipped sums never exceed n * C in norm."""
        m = MLPModel((4,), task="regression")
        X = rng.normal(size=(13, 3)) * 100  # huge gradients
        y = rng.normal(size=13) * 100
        p = m.init_params(3, rng)
        C = 1.0
        _, sums = m.clipped_gradient_sums(p, X, y, C)
        total = np.sqrt(sum(float(np.square(s).sum()) for s in sums))
        assert total <= 13 * C + 1e-9
