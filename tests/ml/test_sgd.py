"""Non-private SGD trainer."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.ml.neural import MLPModel
from repro.ml.sgd import MomentumState, SGDConfig, minibatch_indices, sgd_train


class TestConfig:
    def test_defaults_valid(self):
        cfg = SGDConfig()
        assert cfg.epochs > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"epochs": 0},
            {"batch_size": 0},
            {"momentum": 1.0},
            {"momentum": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(DataError):
            SGDConfig(**kwargs)

    def test_steps_for(self):
        cfg = SGDConfig(epochs=2, batch_size=100)
        assert cfg.steps_for(250) == 2 * 3
        assert cfg.steps_for(50) == 2  # batch capped at n


class TestMinibatches:
    def test_covers_every_index_per_epoch(self, rng):
        seen = np.concatenate(list(minibatch_indices(103, 10, 1, rng)))
        assert np.array_equal(np.sort(seen), np.arange(103))

    def test_epoch_count(self, rng):
        batches = list(minibatch_indices(50, 25, 3, rng))
        assert len(batches) == 2 * 3

    def test_empty_dataset_raises(self, rng):
        with pytest.raises(DataError):
            next(minibatch_indices(0, 10, 1, rng))


class TestMomentum:
    def test_plain_sgd_step(self):
        state = MomentumState(0.0)
        params = [np.array([1.0])]
        state.step(params, [np.array([0.5])], lr=0.1)
        assert params[0][0] == pytest.approx(0.95)

    def test_momentum_accumulates(self):
        state = MomentumState(0.9)
        params = [np.array([0.0])]
        for _ in range(3):
            state.step(params, [np.array([1.0])], lr=1.0)
        # velocities: 1, 1.9, 2.71 -> param: -(1 + 1.9 + 2.71)
        assert params[0][0] == pytest.approx(-5.61)


class TestTraining:
    def test_linear_regression_convergence(self, rng):
        w_true = np.array([1.0, -2.0, 0.5])
        X = rng.normal(size=(4000, 3))
        y = X @ w_true
        model = MLPModel(())
        params, losses = sgd_train(
            model, X, y, SGDConfig(learning_rate=0.1, epochs=10, batch_size=64), rng
        )
        assert losses[-1] < losses[0]
        assert np.allclose(params[0][:, 0], w_true, atol=0.05)

    def test_binary_classification_learns(self, rng):
        X = rng.normal(size=(4000, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        model = MLPModel((), task="binary")
        params, _ = sgd_train(
            model, X, y, SGDConfig(learning_rate=0.5, epochs=8, batch_size=128), rng
        )
        preds = (model.predict_from(params, X) >= 0.5).astype(float)
        assert np.mean(preds == y) > 0.95

    def test_loss_history_length(self, rng):
        X, y = rng.normal(size=(100, 2)), rng.normal(size=100)
        _, losses = sgd_train(MLPModel(()), X, y, SGDConfig(epochs=4, batch_size=32), rng)
        assert len(losses) == 4

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(DataError):
            sgd_train(MLPModel(()), np.ones((5, 2)), np.ones(4), SGDConfig(), rng)

    def test_warm_start_params(self, rng):
        X, y = rng.normal(size=(200, 2)), rng.normal(size=200)
        model = MLPModel(())
        init = model.init_params(2, rng)
        init_copy = [a.copy() for a in init]
        params, _ = sgd_train(model, X, y, SGDConfig(epochs=1, batch_size=50), rng, params=init)
        assert params is init  # trained in place
        assert not all(np.array_equal(a, b) for a, b in zip(params, init_copy))
