"""Feature transforms, encoders and splits."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.ml.preprocessing import (
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    add_bias_column,
    hash_buckets,
    scale_to_0_1,
    train_test_split,
)


class TestScaleTo01:
    def test_maps_bounds(self):
        out = scale_to_0_1(np.array([0.0, 50.0, 100.0]), 0.0, 100.0)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_clips_outliers(self):
        out = scale_to_0_1(np.array([-10.0, 200.0]), 0.0, 100.0)
        assert np.allclose(out, [0.0, 1.0])

    def test_bad_range(self):
        with pytest.raises(DataError):
            scale_to_0_1(np.array([1.0]), 5.0, 5.0)


class TestScalers:
    def test_minmax_columns(self):
        scaler = MinMaxScaler(lower=[0.0, 10.0], upper=[1.0, 20.0])
        out = scaler.transform(np.array([[0.5, 15.0]]))
        assert np.allclose(out, [[0.5, 0.5]])

    def test_standard_scaler_normalizes(self, rng):
        X = rng.normal(3.0, 2.0, size=(5000, 2))
        Z = StandardScaler().fit(X).transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_external_stats(self):
        scaler = StandardScaler().set_statistics(mean=[1.0], std=[2.0])
        assert np.allclose(scaler.transform(np.array([[3.0]])), [[1.0]])

    def test_standard_scaler_unfit_raises(self):
        with pytest.raises(DataError):
            StandardScaler().transform(np.ones((2, 2)))


class TestOneHot:
    def test_output_dim(self):
        enc = OneHotEncoder([3, 2])
        assert enc.output_dim == 5

    def test_rows_one_hot(self):
        enc = OneHotEncoder([3, 2])
        out = enc.transform(np.array([[2, 0], [1, 1]]))
        assert np.array_equal(out, [[0, 0, 1, 1, 0], [0, 1, 0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(DataError):
            OneHotEncoder([2]).transform(np.array([[3]]))


class TestHashing:
    def test_deterministic(self):
        a = hash_buckets(np.arange(100), 10)
        b = hash_buckets(np.arange(100), 10)
        assert np.array_equal(a, b)

    def test_in_range(self):
        out = hash_buckets(np.arange(10_000), 7)
        assert out.min() >= 0 and out.max() < 7

    def test_roughly_uniform(self):
        out = hash_buckets(np.arange(70_000), 7)
        counts = np.bincount(out, minlength=7)
        assert counts.min() > 0.8 * 10_000

    def test_salt_changes_assignment(self):
        a = hash_buckets(np.arange(1000), 16, salt=0)
        b = hash_buckets(np.arange(1000), 16, salt=1)
        assert not np.array_equal(a, b)


class TestSplit:
    def test_sizes(self, rng):
        X, y = np.arange(100).reshape(-1, 1), np.arange(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.1, rng)
        assert Xte.shape[0] == 10 and Xtr.shape[0] == 90

    def test_partition_covers_all(self, rng):
        X, y = np.arange(50).reshape(-1, 1), np.arange(50)
        Xtr, Xte, _, _ = train_test_split(X, y, 0.2, rng)
        combined = np.sort(np.concatenate([Xtr[:, 0], Xte[:, 0]]))
        assert np.array_equal(combined, np.arange(50))

    def test_labels_follow_rows(self, rng):
        X = np.arange(30).reshape(-1, 1)
        y = np.arange(30) * 10
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, rng)
        assert np.array_equal(Xtr[:, 0] * 10, ytr)
        assert np.array_equal(Xte[:, 0] * 10, yte)

    def test_bad_fraction(self, rng):
        with pytest.raises(DataError):
            train_test_split(np.ones((4, 1)), np.ones(4), 1.5, rng)


class TestBias:
    def test_adds_ones_column(self):
        out = add_bias_column(np.zeros((3, 2)))
        assert out.shape == (3, 3)
        assert np.all(out[:, -1] == 1.0)
