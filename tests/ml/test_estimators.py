"""Estimator wrappers around the SGD/DP-SGD trainers."""

import numpy as np
import pytest

from repro.dp.budget import PrivacyBudget
from repro.errors import DataError
from repro.ml.estimators import (
    DPSGDClassifierEstimator,
    DPSGDRegressorEstimator,
    MLPClassifierEstimator,
    MLPRegressorEstimator,
)
from repro.ml.sgd import SGDConfig


@pytest.fixture
def regression_data(rng):
    X = rng.normal(size=(3000, 3))
    y = X @ np.array([1.0, -0.5, 0.2])
    return X, y


@pytest.fixture
def classification_data(rng):
    X = rng.normal(size=(3000, 3))
    y = (X[:, 0] - X[:, 1] > 0).astype(float)
    return X, y


class TestNonPrivate:
    def test_regressor_learns(self, rng, regression_data):
        X, y = regression_data
        est = MLPRegressorEstimator((), SGDConfig(learning_rate=0.1, epochs=5, batch_size=128))
        est.fit(X, y, rng)
        assert np.mean((est.predict(X) - y) ** 2) < 0.1 * np.var(y)

    def test_classifier_labels(self, rng, classification_data):
        X, y = classification_data
        est = MLPClassifierEstimator((), SGDConfig(learning_rate=0.5, epochs=5, batch_size=128))
        est.fit(X, y, rng)
        labels = est.predict_labels(X)
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert np.mean(labels == y) > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(DataError):
            MLPRegressorEstimator(()).predict(np.ones((2, 2)))


class TestDP:
    def test_dp_regressor_records_spend(self, rng, regression_data):
        X, y = regression_data
        est = DPSGDRegressorEstimator(
            PrivacyBudget(2.0, 1e-6), (), SGDConfig(epochs=1, batch_size=256)
        )
        est.fit(X, y, rng)
        assert est.spent_ is not None
        assert est.spent_.epsilon <= 2.0 + 1e-9
        assert est.noise_multiplier_ > 0

    def test_dp_classifier_probabilities(self, rng, classification_data):
        X, y = classification_data
        est = DPSGDClassifierEstimator(
            PrivacyBudget(3.0, 1e-6), (), SGDConfig(learning_rate=0.3, epochs=2, batch_size=256)
        )
        est.fit(X, y, rng)
        probs = est.predict(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_rejects_pure_dp_budget(self):
        with pytest.raises(DataError):
            DPSGDRegressorEstimator(PrivacyBudget(1.0, 0.0))
