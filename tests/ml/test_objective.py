"""Objective-perturbation DP logistic regression."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.ml.objective import ObjectivePerturbationLogistic


def separable_data(rng, n=6000, d=4):
    X = rng.normal(size=(n, d)) / np.sqrt(d)
    w = np.array([2.0, -1.5, 1.0, 0.5])[:d]
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(float)
    return X, y


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0, "regularization": 0.0},
            {"epsilon": 1.0, "x_bound": 0.0},
            {"epsilon": 1.0, "iterations": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(DataError):
            ObjectivePerturbationLogistic(**kwargs)

    def test_pure_dp_budget(self):
        model = ObjectivePerturbationLogistic(0.5)
        assert model.budget.epsilon == 0.5
        assert model.budget.delta == 0.0


class TestFit:
    def test_learns_separable_task(self, rng):
        X, y = separable_data(rng)
        model = ObjectivePerturbationLogistic(epsilon=2.0, x_bound=1.5)
        model.fit(X, y, rng)
        acc = float(np.mean(model.predict_labels(X) == y))
        assert acc > 0.85

    def test_probabilities_in_range(self, rng):
        X, y = separable_data(rng, n=500)
        model = ObjectivePerturbationLogistic(epsilon=1.0).fit(X, y, rng)
        probs = model.predict(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_regularization_raised_when_needed(self, rng):
        """Tiny epsilon on few samples forces the CM lambda floor up."""
        X, y = separable_data(rng, n=200)
        model = ObjectivePerturbationLogistic(epsilon=0.05, regularization=1e-6)
        model.fit(X, y, rng)
        assert model.effective_regularization_ > 1e-6

    def test_more_budget_more_accurate(self):
        accs = {}
        for eps in (0.1, 5.0):
            scores = []
            for seed in range(5):
                rng = np.random.default_rng(seed)
                X, y = separable_data(rng)
                m = ObjectivePerturbationLogistic(epsilon=eps, x_bound=1.5)
                m.fit(X, y, np.random.default_rng(100 + seed))
                scores.append(float(np.mean(m.predict_labels(X) == y)))
            accs[eps] = np.mean(scores)
        assert accs[5.0] >= accs[0.1]

    def test_rejects_nonbinary_labels(self, rng):
        with pytest.raises(DataError):
            ObjectivePerturbationLogistic(1.0).fit(
                np.ones((3, 2)), np.array([0.0, 1.0, 2.0]), rng
            )

    def test_predict_before_fit(self):
        with pytest.raises(DataError):
            ObjectivePerturbationLogistic(1.0).predict(np.ones((2, 2)))

    def test_criteo_beats_majority(self, rng, criteo_batch):
        """The second DP classifier works on the platform's real featurization.

        Objective perturbation is dimension-sensitive (its noise norm grows
        with d ~ 250 here), so matching DP-SGD's small-epsilon utility is
        not expected; with a moderate budget it must clear the majority
        class, which is the regime the paper's citation [10] targets.
        """
        n = 15_000
        model = ObjectivePerturbationLogistic(
            epsilon=8.0, x_bound=6.0, regularization=0.01
        )
        model.fit(criteo_batch.X[:n], criteo_batch.y[:n], rng)
        acc = float(
            np.mean(model.predict_labels(criteo_batch.X[n:]) == criteo_batch.y[n:])
        )
        assert acc >= 0.75  # above the 0.743 majority class
