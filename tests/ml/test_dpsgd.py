"""DP-SGD trainer: accounting, clipping, utility."""

import numpy as np
import pytest

from repro.dp.budget import PrivacyBudget
from repro.dp.rdp import compute_epsilon
from repro.errors import DataError
from repro.ml.dpsgd import DPSGDConfig, clipped_noisy_mean_gradients, dpsgd_train
from repro.ml.metrics import mse
from repro.ml.neural import MLPModel
from repro.ml.sgd import SGDConfig


def linear_data(rng, n=3000, d=4, noise=0.05):
    w = rng.normal(size=d)
    X = rng.normal(size=(n, d))
    y = X @ w + noise * rng.normal(size=n)
    return X, y, w


class TestConfig:
    def test_bad_clip_norm(self):
        with pytest.raises(DataError):
            DPSGDConfig(sgd=SGDConfig(), clip_norm=0.0)

    def test_bad_noise_multiplier(self):
        with pytest.raises(DataError):
            DPSGDConfig(sgd=SGDConfig(), noise_multiplier=-1.0)


class TestGradientEstimate:
    def test_zero_noise_matches_clipped_mean(self, rng):
        model = MLPModel(())
        X, y, _ = linear_data(rng, n=50)
        params = model.init_params(4, rng)
        loss, grads = clipped_noisy_mean_gradients(
            model, params, X, y, clip_norm=1e9, noise_sigma=0.0, rng=rng
        )
        _, ref = model.mean_gradients(params, X, y)
        for a, b in zip(grads, ref):
            assert np.allclose(a, b, atol=1e-9)

    def test_noise_variance_scales_with_sigma(self):
        model = MLPModel(())
        rng = np.random.default_rng(0)
        X = np.zeros((10, 3))
        y = np.zeros(10)  # zero gradients -> output is pure noise / n
        params = [np.zeros((3, 1)), np.zeros(1)]
        draws = []
        for _ in range(3000):
            _, grads = clipped_noisy_mean_gradients(
                model, params, X, y, clip_norm=2.0, noise_sigma=1.5, rng=rng
            )
            draws.append(grads[0][0, 0])
        # Each coordinate: N(0, (sigma*C)^2) / n  ->  std = 1.5*2/10 = 0.3
        assert abs(np.std(draws) - 0.3) < 0.02


class TestTraining:
    def test_requires_exactly_one_of_budget_and_sigma(self, rng):
        model = MLPModel(())
        X, y, _ = linear_data(rng, n=100)
        with pytest.raises(DataError):
            dpsgd_train(model, X, y, DPSGDConfig(sgd=SGDConfig()), rng)  # neither
        with pytest.raises(DataError):
            dpsgd_train(
                model, X, y,
                DPSGDConfig(sgd=SGDConfig(), noise_multiplier=1.0),
                rng,
                budget=PrivacyBudget(1.0, 1e-6),
            )  # both

    def test_budget_calibration_respected(self, rng):
        model = MLPModel(())
        X, y, _ = linear_data(rng, n=2000)
        cfg = DPSGDConfig(sgd=SGDConfig(epochs=2, batch_size=200, learning_rate=0.05))
        budget = PrivacyBudget(2.0, 1e-6)
        result = dpsgd_train(model, X, y, cfg, rng, budget=budget)
        assert result.spent.epsilon <= 2.0 + 1e-6
        # Re-derive from the recorded run parameters.
        eps = compute_epsilon(
            result.sampling_rate, result.noise_multiplier, result.steps, 1e-6
        )
        assert eps == pytest.approx(result.spent.epsilon, rel=1e-6)

    def test_pure_epsilon_budget_rejected(self, rng):
        model = MLPModel(())
        X, y, _ = linear_data(rng, n=100)
        with pytest.raises(DataError):
            dpsgd_train(
                model, X, y, DPSGDConfig(sgd=SGDConfig()), rng,
                budget=PrivacyBudget(1.0, 0.0),
            )

    def test_utility_with_generous_budget(self, rng):
        X, y, w = linear_data(rng, n=8000, noise=0.05)
        model = MLPModel(())
        cfg = DPSGDConfig(
            sgd=SGDConfig(learning_rate=0.1, epochs=6, batch_size=256),
            clip_norm=4.0,
        )
        result = dpsgd_train(model, X, y, cfg, rng, budget=PrivacyBudget(5.0, 1e-6))
        predictions = model.predict_from(result.params, X)
        assert mse(y, predictions) < 0.25 * float(np.var(y))

    def test_more_budget_means_less_noise(self, rng):
        X, y, _ = linear_data(rng, n=2000)
        model = MLPModel(())
        cfg = DPSGDConfig(sgd=SGDConfig(epochs=1, batch_size=200))
        tight = dpsgd_train(model, X, y, cfg, rng, budget=PrivacyBudget(0.2, 1e-6))
        loose = dpsgd_train(model, X, y, cfg, rng, budget=PrivacyBudget(3.0, 1e-6))
        assert loose.noise_multiplier < tight.noise_multiplier

    def test_explicit_sigma_run_reports_spend(self, rng):
        X, y, _ = linear_data(rng, n=500)
        model = MLPModel(())
        cfg = DPSGDConfig(sgd=SGDConfig(epochs=1, batch_size=100), noise_multiplier=2.0)
        result = dpsgd_train(model, X, y, cfg, rng)
        assert result.noise_multiplier == 2.0
        assert result.spent.epsilon > 0

    def test_epoch_losses_recorded(self, rng):
        X, y, _ = linear_data(rng, n=400)
        cfg = DPSGDConfig(sgd=SGDConfig(epochs=3, batch_size=100), noise_multiplier=1.0)
        result = dpsgd_train(MLPModel(()), X, y, cfg, rng)
        assert len(result.epoch_losses) == 3
