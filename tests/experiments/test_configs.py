"""Table 1 configuration objects and pipeline builders."""

import numpy as np
import pytest

from repro.core.pipeline import HistogramPipeline, StatisticPipeline
from repro.core.validation.accuracy import DPAccuracyValidator
from repro.core.validation.loss import DPLossValidator
from repro.dp.budget import PrivacyBudget
from repro.errors import DataError
from repro.experiments.configs import (
    CRITEO_COUNT_TARGETS,
    CRITEO_LG,
    CRITEO_NN,
    MODEL_CONFIGS,
    TAXI_LR,
    TAXI_NN,
    TAXI_SPEED_TARGETS,
    criteo_count_pipeline,
    taxi_speed_pipeline,
)


class TestTable1Transcription:
    def test_budgets_match_paper(self):
        assert TAXI_LR.epsilon_large == 1.0 and TAXI_LR.epsilon_small == 0.05
        assert TAXI_NN.epsilon_small == 0.1
        assert CRITEO_LG.epsilon_small == 0.25
        assert CRITEO_NN.epsilon_small == 0.25
        assert all(c.delta == 1e-6 for c in MODEL_CONFIGS.values())

    def test_target_ranges_match_paper(self):
        assert min(TAXI_LR.targets) == pytest.approx(0.0024)
        assert max(TAXI_LR.targets) == pytest.approx(0.007)
        assert min(TAXI_NN.targets) == pytest.approx(0.002)
        assert CRITEO_LG.targets[0] == 0.74 and CRITEO_LG.targets[-1] == 0.78

    def test_naive_baselines(self):
        assert TAXI_LR.naive_metric == pytest.approx(0.0069)
        assert CRITEO_LG.naive_metric == pytest.approx(0.743)

    def test_statistics_targets(self):
        assert TAXI_SPEED_TARGETS == (1.0, 5.0, 7.5, 10.0, 15.0)
        assert CRITEO_COUNT_TARGETS == (0.01, 0.05, 0.10)

    def test_sgd_hyperparameters(self):
        # Epoch counts and momentum are the paper's; learning rates, batch
        # sizes and clip norms are re-tuned for laptop-scale sampling rates
        # (documented in EXPERIMENTS.md and the config comments).
        assert CRITEO_LG.sgd.epochs == 3
        assert CRITEO_NN.sgd.epochs == 5
        assert TAXI_NN.sgd.momentum == 0.9
        assert CRITEO_LG.sgd.batch_size >= 512
        assert TAXI_NN.clip_norm > 0


class TestBuilders:
    def test_validator_kinds(self):
        assert isinstance(TAXI_LR.validator(0.005), DPLossValidator)
        assert isinstance(CRITEO_LG.validator(0.75), DPAccuracyValidator)

    def test_erm_only_for_adassp(self):
        assert TAXI_LR.erm_fn() is not None
        assert TAXI_NN.erm_fn() is None

    def test_trainer_fn_trains(self, rng, taxi_batch):
        trainer = TAXI_LR.trainer_fn()
        model = trainer(taxi_batch.X[:4000], taxi_batch.y[:4000], PrivacyBudget(1.0, 1e-6), rng)
        preds = model.predict(taxi_batch.X[4000:5000])
        assert preds.shape == (1000,)

    def test_np_trainer_fn_trains(self, rng, taxi_batch):
        trainer = TAXI_LR.np_trainer_fn()
        model = trainer(taxi_batch.X[:4000], taxi_batch.y[:4000], PrivacyBudget(1.0, 1e-6), rng)
        assert np.isfinite(model.predict(taxi_batch.X[:10])).all()

    def test_batch_size_capped_for_small_n(self):
        sgd = CRITEO_NN._effective_sgd(100)
        assert sgd.batch_size <= 25 or sgd.batch_size == 16

    def test_pipeline_builder(self):
        pipeline = TAXI_LR.pipeline(target=0.005)
        assert pipeline.metric == "mse"
        assert "taxi-lr" in pipeline.name

    def test_speed_pipeline(self):
        pipeline = taxi_speed_pipeline("hour_of_day", 7.5)
        assert isinstance(pipeline, StatisticPipeline)
        assert pipeline.nkeys == 24
        with pytest.raises(DataError):
            taxi_speed_pipeline("minute", 7.5)

    def test_count_pipeline(self):
        pipeline = criteo_count_pipeline(0, 0.05)
        assert isinstance(pipeline, HistogramPipeline)
        with pytest.raises(DataError):
            criteo_count_pipeline(99, 0.05)
