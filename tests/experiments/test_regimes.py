"""The four validation regimes of Table 2 / Fig. 6."""

import numpy as np
import pytest

from repro.experiments.regimes import Regime, accepts, accepts_accuracy, accepts_loss


def losses(rng, mean, n):
    return (rng.random(n) < mean).astype(float)


class TestLossRegimes:
    def test_no_sla_accepts_tiny_samples(self):
        """Vanilla validation happily accepts with almost no evidence."""
        count = 0
        for seed in range(50):
            rng = np.random.default_rng(seed)
            count += accepts_loss(
                Regime.NO_SLA, losses(rng, 0.05, 200), 0.08, 1.0, 0.95, rng
            )
        assert count > 30

    def test_rigorous_regimes_refuse_tiny_samples(self):
        for regime in (Regime.NP_SLA, Regime.SAGE_SLA):
            count = 0
            for seed in range(50):
                rng = np.random.default_rng(seed)
                count += accepts_loss(
                    regime, losses(rng, 0.05, 200), 0.08, 1.0, 0.95, rng
                )
            assert count == 0, regime

    def test_all_regimes_accept_with_abundant_evidence(self):
        for regime in Regime:
            rng = np.random.default_rng(1)
            assert accepts_loss(
                regime, losses(rng, 0.02, 200_000), 0.08, 1.0, 0.95, rng
            ), regime

    def test_sage_stricter_than_uncorrected(self):
        """Sage's corrections only make acceptance harder."""
        sage = uc = 0
        for seed in range(100):
            rng = np.random.default_rng(seed)
            sample = losses(rng, 0.055, 3000)
            rng_a = np.random.default_rng(1000 + seed)
            rng_b = np.random.default_rng(1000 + seed)
            uc += accepts_loss(Regime.UC_DP_SLA, sample, 0.08, 0.5, 0.95, rng_a)
            sage += accepts_loss(Regime.SAGE_SLA, sample, 0.08, 0.5, 0.95, rng_b)
        assert sage <= uc


class TestAccuracyRegimes:
    def test_dispatch(self):
        rng = np.random.default_rng(0)
        correct = (rng.random(50_000) < 0.78).astype(float)
        assert accepts(Regime.SAGE_SLA, "accuracy", correct, 0.75, 1.0, 0.95, rng)
        errs = (rng.random(50_000) < 0.02).astype(float)
        assert accepts(Regime.SAGE_SLA, "mse", errs, 0.05, 1.0, 0.95, rng)

    def test_np_sla_uses_exact_binomial(self):
        rng = np.random.default_rng(0)
        correct = (rng.random(10_000) < 0.78).astype(float)
        assert accepts_accuracy(Regime.NP_SLA, correct, 0.76, 1.0, 0.95, rng)
        assert not accepts_accuracy(Regime.NP_SLA, correct, 0.79, 1.0, 0.95, rng)

    def test_no_sla_noisy_comparison(self):
        rng = np.random.default_rng(0)
        correct = (rng.random(2_000) < 0.78).astype(float)
        outcomes = [
            accepts_accuracy(Regime.NO_SLA, correct, 0.775, 0.3, 0.95, rng)
            for _ in range(60)
        ]
        # Around the boundary with noise: both outcomes occur.
        assert 0 < sum(outcomes) < 60
