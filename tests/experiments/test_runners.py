"""Experiment runners (small-scale smoke + structural checks)."""

import numpy as np
import pytest

from repro.experiments.configs import TAXI_LR
from repro.experiments.regimes import Regime
from repro.experiments.reporting import (
    format_fig5,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table2,
)
from repro.experiments.runners import (
    collect_training_runs,
    fig5_series,
    fig6_required_samples,
    run_fig7_lr,
    run_fig8,
    table2_violation_rates,
)


@pytest.fixture(scope="module")
def lr_table():
    return collect_training_runs(
        TAXI_LR,
        schedule=(2_000, 8_000, 32_000),
        seeds=(0, 1),
        eval_size=10_000,
    )


class TestCollect:
    def test_all_cells_present(self, lr_table):
        assert len(lr_table.runs) == 3 * 2 * 3  # sizes x seeds x modes
        assert lr_table.seeds == [0, 1]

    def test_np_beats_small_dp(self, lr_table):
        np_runs = lr_table.select("np")
        dp_small = lr_table.select("dp-small")
        assert np.mean([r.heldout_metric for r in np_runs]) < np.mean(
            [r.heldout_metric for r in dp_small]
        )

    def test_dp_improves_with_data(self, lr_table):
        runs = lr_table.select("dp-large", seed=0)
        assert runs[-1].heldout_metric < runs[0].heldout_metric


class TestFig5:
    def test_series_structure(self, lr_table):
        series = fig5_series(lr_table)
        assert set(series) == {"np", "dp-large", "dp-small"}
        assert [n for n, _ in series["np"]] == [2_000, 8_000, 32_000]
        out = format_fig5("Fig 5a", series, "mse")
        assert "samples" in out and "dp-large" in out


class TestFig6:
    def test_required_samples_monotone_regimes(self, lr_table):
        required = fig6_required_samples(
            lr_table, targets=(0.005, 0.007), seed=0
        )
        out = format_fig6("Fig 6a", required)
        assert "target" in out
        # No SLA accepts at most as late as Sage SLA wherever both accept.
        for target in (0.005, 0.007):
            no_sla = required[Regime.NO_SLA][target]
            sage = required[Regime.SAGE_SLA][target]
            if no_sla is not None and sage is not None:
                assert no_sla <= sage


class TestTable2:
    def test_rates_in_unit_interval(self, lr_table):
        rates = table2_violation_rates(
            lr_table, targets=(0.005, 0.006), eta=0.05, trials_per_cell=5
        )
        for regime, rate in rates.items():
            if rate == rate:  # skip NaN (nothing accepted)
                assert 0.0 <= rate <= 1.0
        out = format_table2("Table 2", {0.05: rates})
        assert "Sage SLA" in out


class TestFig7:
    def test_query_composition_worse(self):
        curves = run_fig7_lr(
            sample_sizes=(8_000, 16_000),
            block_sizes=(4_000,),
            seeds=(0,),
            eval_size=8_000,
        )
        assert "block" in curves and "query-4000" in curves
        block = dict(curves["block"])
        query = dict(curves["query-4000"])
        assert query[16_000] > block[16_000]
        out = format_fig7("Fig 7a", curves)
        assert "query-4000" in out


class TestFig8:
    def test_small_sweep(self):
        reports = run_fig8(
            rates=(0.2,),
            strategies=("block-conserve", "streaming"),
            horizon_hours=60.0,
        )
        assert set(reports) == {"block-conserve", "streaming"}
        out = format_fig8("Fig 8a", reports)
        assert "block-conserve" in out
