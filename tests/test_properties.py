"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.accountant import BlockAccountant
from repro.core.validation.bounds import bernstein_upper_bound
from repro.data.stream import StreamBatch, TimePartitioner
from repro.dp.budget import PrivacyBudget
from repro.dp.sensitivity import clip_rows_l2
from repro.ml.base import per_example_sq_norms
from repro.ml.neural import MLPModel

SMALL_FLOATS = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestStreamBatchProperties:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 30), st.just(3)),
                   elements=SMALL_FLOATS),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_select_concat_roundtrip(self, X, split_at):
        n = X.shape[0]
        split_at = min(split_at, n - 1)
        batch = StreamBatch(
            X=X, y=np.zeros(n), timestamps=np.arange(n, dtype=float),
            user_ids=np.zeros(n, dtype=np.int64),
        )
        left = batch.select(np.arange(0, max(1, split_at)))
        right = batch.select(np.arange(max(1, split_at), n))
        joined = StreamBatch.concatenate([left, right])
        assert np.array_equal(joined.X, X)

    @given(
        hnp.arrays(np.float64, st.integers(1, 200),
                   elements=st.floats(min_value=0.0, max_value=50.0)),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_partition_is_a_partition(self, timestamps, window):
        n = timestamps.shape[0]
        batch = StreamBatch(
            X=np.zeros((n, 1)), y=np.zeros(n),
            timestamps=np.sort(timestamps), user_ids=np.zeros(n, dtype=np.int64),
        )
        blocks = TimePartitioner(window).partition(batch)
        assert sum(len(b) for b in blocks) == n
        keys = [b.key for b in blocks]
        assert len(keys) == len(set(keys))


class TestClippingProperties:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.integers(1, 8)),
                   elements=SMALL_FLOATS),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_l2_clip_is_idempotent(self, rows, max_norm):
        once = clip_rows_l2(rows, max_norm)
        twice = clip_rows_l2(once, max_norm)
        assert np.allclose(once, twice, atol=1e-12)

    @given(st.integers(min_value=1, max_value=16), st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_ghost_clipped_sums_norm_bounded(self, n, clip):
        """||sum of clipped per-example grads|| <= n * C, always."""
        rng = np.random.default_rng(n)
        model = MLPModel((5,), task="regression")
        X = rng.normal(size=(n, 3)) * 10
        y = rng.normal(size=n) * 10
        params = model.init_params(3, rng)
        _, sums = model.clipped_gradient_sums(params, X, y, clip)
        total = np.sqrt(sum(float(np.square(s).sum()) for s in sums))
        assert total <= n * clip + 1e-6

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_per_example_norms_match_ghost_factorization(self, n):
        rng = np.random.default_rng(n)
        model = MLPModel((4, 3), task="binary")
        X = rng.normal(size=(n, 5))
        y = (rng.random(n) > 0.5).astype(float)
        params = model.init_params(5, rng)
        _, grads = model.per_example_gradients(params, X, y)
        direct = per_example_sq_norms(grads)
        # Recover the same norms through the ghost-clipping path: clip at a
        # huge bound so factors are 1, then compare sums coordinate-wise.
        _, sums = model.clipped_gradient_sums(params, X, y, 1e12)
        for g, s in zip(grads, sums):
            assert np.allclose(g.sum(axis=0), s, atol=1e-9)
        assert np.all(direct >= 0)


class TestAccountingProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.floats(0.05, 0.6), st.booleans()),
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_interleaved_charges_and_queries_stay_sound(self, ops):
        acc = BlockAccountant(1.0, 1e-6)
        acc.register_blocks(range(4))
        for key, eps, pair in ops:
            keys = [key, (key + 1) % 4] if pair else [key]
            budget = PrivacyBudget(eps, 0.0)
            if acc.can_charge(keys, budget):
                acc.charge(keys, budget)
            # Invariants hold after every operation:
            bound = acc.stream_loss_bound()
            assert bound.epsilon <= 1.0 + 1e-9
            for k in range(4):
                assert acc.max_epsilon([k], 0.0) >= 0.0


class TestBoundMonotonicity:
    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=10, max_value=100_000),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=60)
    def test_bernstein_monotone_in_mean(self, mean, n, eta):
        low = bernstein_upper_bound(mean, n, eta, 1.0)
        high = bernstein_upper_bound(mean + 0.1, n, eta, 1.0)
        assert high >= low
