"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a fresh checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# REPRO_SANITIZER=1 runs the whole suite with the runtime write barrier:
# the accounting slabs are read-only while any declared-pure call is on
# the stack, so a hidden mutation faults at its exact line (see
# repro.analysis.sanitizer; CI runs tier-1 once in this mode).
from repro.analysis import sanitizer as _sanitizer  # noqa: E402

_sanitizer.install_from_env()


@pytest.fixture
def rng():
    """Deterministic generator; tests that need other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def taxi_batch():
    """A medium taxi batch shared by read-only tests (session-scoped: do not
    mutate)."""
    from repro.data import TaxiGenerator

    return TaxiGenerator().generate(20_000, np.random.default_rng(7))


@pytest.fixture(scope="session")
def criteo_batch():
    """A medium criteo batch shared by read-only tests (do not mutate)."""
    from repro.data import CriteoGenerator

    return CriteoGenerator().generate(20_000, np.random.default_rng(7))
