"""Telemetry on the live platform: byte parity, the no-op contract, the
span taxonomy of the hourly drive, and traced crash recovery.

The headline property is PR 9's acceptance gate: attaching a
:class:`~repro.obs.Telemetry` must leave the simulation byte-identical
(per-hour state digests and the full protocol fingerprint) on every
drive variant -- sequential, batched, speculative, sharded, durable.
"""

import pytest

from repro.core import durability, faults
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.core.sharding import sharded_accountant_factory
from repro.obs import Probe, Telemetry, WallProfiler
from repro.obs.analyze import hour_coverage
from repro.workload.oracle import CountStreamSource, OraclePipeline

VARIANTS = {
    "sequential": {"batched_advance": False},
    "batched": {},
    "speculative": {"propose_workers": 2},
    "sharded": {
        "accountant_factory": sharded_accountant_factory(4),
        "propose_workers": 2,
    },
}


def _pipes(n=4):
    return [
        (
            OraclePipeline(name=f"p{i}", n_at_eps1=3_000.0 * (2.0 ** i)),
            AdaptiveConfig(max_attempts=16),
        )
        for i in range(n)
    ]


def _build(variant, telemetry=None, **kwargs):
    return Sage(
        CountStreamSource(4000, scale=1000),
        seed=5,
        telemetry=telemetry,
        **VARIANTS[variant],
        **kwargs,
    )


def _drive(sage, hours):
    for pipeline, config in _pipes():
        sage.submit(pipeline, config)
    digests = []
    for _ in range(hours):
        sage.advance(1.0)
        digests.append(durability.state_digest(sage))
    return digests


@pytest.fixture(autouse=True)
def _clean_fault_registry():
    faults.clear()
    yield
    faults.clear()


class TestByteParity:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_traced_drive_is_byte_identical(self, variant):
        bare = _build(variant)
        bare_digests = _drive(bare, 6)
        telemetry = Telemetry()
        traced = _build(variant, telemetry=telemetry)
        traced_digests = _drive(traced, 6)
        assert traced_digests == bare_digests
        assert telemetry.tracer.spans, "the traced drive must emit spans"
        # The diagnostics stay identical too -- the registry-backed
        # compat properties feed the same numbers either way.
        assert traced.last_hour_charges == bare.last_hour_charges
        assert traced.last_hour_speculations == bare.last_hour_speculations
        traced.close()
        bare.close()

    def test_durable_traced_drive_is_byte_identical(self, tmp_path):
        bare = _build("batched", wal_dir=tmp_path / "bare", snapshot_every=2)
        bare_digests = _drive(bare, 6)
        bare.close()
        telemetry = Telemetry()
        traced = _build(
            "batched",
            telemetry=telemetry,
            wal_dir=tmp_path / "traced",
            snapshot_every=2,
        )
        traced_digests = _drive(traced, 6)
        traced.close()
        assert traced_digests == bare_digests
        # And the WAL bytes themselves: telemetry never reaches the log.
        assert (tmp_path / "traced" / "charge.wal").read_bytes() == (
            tmp_path / "bare" / "charge.wal"
        ).read_bytes()

    def test_two_traced_runs_emit_identical_traces(self):
        traces = []
        for _ in range(2):
            telemetry = Telemetry()
            sage = _build("batched", telemetry=telemetry)
            _drive(sage, 4)
            sage.close()
            traces.append(
                [
                    (s.span_id, s.parent_id, s.name, s.start, s.end, s.hour)
                    for s in telemetry.tracer.spans
                ]
            )
        assert traces[0] == traces[1]


class TestNoOpContract:
    def test_without_telemetry_no_tracer_anywhere(self):
        sage = _build("batched")
        assert sage.telemetry is None
        assert sage._tracer is None
        assert sage.access.accountant._tracer is None
        sage.close()

    def test_without_telemetry_no_fault_observer(self):
        before = len(faults._OBSERVERS)
        sage = _build("batched")
        assert len(faults._OBSERVERS) == before
        sage.close()

    def test_close_detaches_the_fault_observer(self):
        before = len(faults._OBSERVERS)
        sage = _build("batched", telemetry=Telemetry())
        assert len(faults._OBSERVERS) == before + 1
        sage.close()
        assert len(faults._OBSERVERS) == before

    def test_registry_present_without_telemetry(self):
        sage = _build("batched")
        _drive(sage, 2)
        assert sage.metrics.counter_value("sage_hours_advanced_total") == 2
        assert not sage.metrics.snapshot()["histograms"].get("missing")
        sage.close()


class TestSpanTaxonomy:
    def test_sharded_durable_drive_emits_the_full_phase_set(self, tmp_path):
        telemetry = Telemetry()
        sage = _build(
            "sharded", telemetry=telemetry, wal_dir=tmp_path, snapshot_every=2
        )
        _drive(sage, 4)
        sage.close()
        names = set(telemetry.tracer.span_names())
        assert {
            "advance.hour",
            "advance.open",
            "advance.propose_fanout",
            "session.drive",
            "charge.batch",
            "shard.validate",
            "shard.commit",
            "staging.commit",
            "wal.append",
            "wal.fsync",
            "wal.commit",
            "snapshot.write",
        } <= names
        events = set(telemetry.tracer.event_names())
        assert {"charge.granted", "reservations.settle"} <= events
        # Hour spans carry the mode; shard spans the shard index.
        hour_spans = telemetry.tracer.find_spans("advance.hour")
        assert all(s.args["mode"] == "durable" for s in hour_spans)
        shards = {s.args["shard"] for s in telemetry.tracer.find_spans("shard.validate")}
        assert shards <= set(range(4)) and shards
        # WAL metrics filled alongside the spans.
        metrics = telemetry.metrics
        assert metrics.counter_value("sage_wal_bytes_total") > 0
        assert metrics.counter_value("sage_wal_fsyncs_total") > 0
        assert metrics.counter_value("sage_snapshots_written_total") > 0

    def test_speculation_events_fire_on_the_parallel_drive(self):
        telemetry = Telemetry()
        sage = _build("speculative", telemetry=telemetry)
        _drive(sage, 4)
        adopted, invalidated = (
            telemetry.metrics.counter_value("sage_speculations_adopted_total"),
            telemetry.metrics.counter_value("sage_speculations_invalidated_total"),
        )
        assert adopted + invalidated > 0
        assert len(telemetry.tracer.find_events("speculation.adopted")) == adopted
        assert (
            len(telemetry.tracer.find_events("speculation.invalidated"))
            == invalidated
        )
        sage.close()

    def test_spans_are_emitted_serially_and_nest_under_the_hour(self):
        telemetry = Telemetry()
        sage = _build("sharded", telemetry=telemetry)
        _drive(sage, 3)
        sage.close()
        tracer = telemetry.tracer
        hours = {s.span_id: s for s in tracer.find_spans("advance.hour")}
        for name in ("session.drive", "charge.batch", "staging.commit"):
            for span in tracer.find_spans(name):
                top = span
                while top.parent_id is not None:
                    parent = next(
                        s for s in tracer.spans if s.span_id == top.parent_id
                    )
                    top = parent
                assert top.span_id in hours, f"{name} not rooted in an hour span"
        # Ticks are strictly increasing in emission order -- the serial
        # discipline the tracer documents.
        closes = [s.end for s in tracer.spans]
        assert closes == sorted(closes)


def _span_key(tracer):
    return [
        (s.span_id, s.parent_id, s.name, s.start, s.end, s.hour)
        for s in tracer.spans
    ]


class TestProfilerParity:
    """PR 10's acceptance gate: profiling observes, never participates.

    A profiled run must stay byte-identical to a bare run, and the
    deterministic tracer's output must not depend on whether a profiler
    rides alongside it.
    """

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_profiled_drive_is_byte_identical(self, variant):
        bare = _build(variant)
        bare_digests = _drive(bare, 6)
        telemetry = Telemetry(profiler=WallProfiler())
        profiled = _build(variant, telemetry=telemetry)
        profiled_digests = _drive(profiled, 6)
        assert profiled_digests == bare_digests
        assert telemetry.profiler.spans, "the profiler must capture spans"
        profiled.close()
        bare.close()

    def test_profiled_durable_wal_bytes_match_bare(self, tmp_path):
        bare = _build("batched", wal_dir=tmp_path / "bare", snapshot_every=2)
        bare_digests = _drive(bare, 6)
        bare.close()
        telemetry = Telemetry(profiler=WallProfiler())
        profiled = _build(
            "batched",
            telemetry=telemetry,
            wal_dir=tmp_path / "profiled",
            snapshot_every=2,
        )
        profiled_digests = _drive(profiled, 6)
        profiled.close()
        assert profiled_digests == bare_digests
        assert (tmp_path / "profiled" / "charge.wal").read_bytes() == (
            tmp_path / "bare" / "charge.wal"
        ).read_bytes()

    def test_tracer_output_is_identical_with_and_without_a_profiler(self):
        traced = Telemetry()
        sage = _build("sharded", telemetry=traced)
        _drive(sage, 4)
        sage.close()
        profiled = Telemetry(profiler=WallProfiler())
        sage = _build("sharded", telemetry=profiled)
        _drive(sage, 4)
        sage.close()
        assert _span_key(profiled.tracer) == _span_key(traced.tracer)
        assert [
            (e.event_id, e.name, e.ts, e.hour) for e in profiled.tracer.events
        ] == [(e.event_id, e.name, e.ts, e.hour) for e in traced.tracer.events]

    def test_platform_probe_tees_and_profiler_mirrors_the_taxonomy(self):
        telemetry = Telemetry(profiler=WallProfiler())
        sage = _build("sharded", telemetry=telemetry)
        assert isinstance(sage._tracer, Probe)
        _drive(sage, 4)
        sage.close()
        profiler = telemetry.profiler
        # The profiler records the same span taxonomy on a wall clock...
        assert set(profiler.span_names()) == set(
            telemetry.tracer.span_names()
        )
        assert all(s.duration >= 0.0 for s in profiler.spans)
        # ...decomposes shard validation per shard...
        shards = {
            s.args["shard"] for s in profiler.find_spans("shard.validate")
        }
        assert shards and shards <= set(range(4))
        assert shards == {
            s.args["shard"]
            for s in telemetry.tracer.find_spans("shard.validate")
        }
        # ...and explains most of each hour through child spans.
        assert hour_coverage(profiler) > 0.5

    def test_profiler_spans_stay_out_of_the_tracer(self):
        telemetry = Telemetry(profiler=WallProfiler())
        sage = _build("batched", telemetry=telemetry)
        _drive(sage, 3)
        sage.close()
        tracer_ids = {id(s) for s in telemetry.tracer.spans}
        assert tracer_ids.isdisjoint(id(s) for s in telemetry.profiler.spans)
        # Tick timestamps stay logical on the tracer half even though the
        # profiler half runs on perf_counter.
        ticks = [s.end for s in telemetry.tracer.spans]
        assert all(float(t).is_integer() for t in ticks)


class TestTracedRecovery:
    def test_kill_recover_traces_the_replay(self, tmp_path):
        sage = _build("batched", wal_dir=tmp_path, snapshot_every=0)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("wal.after_append", skip=2):
                for _ in range(6):
                    sage.advance(1.0)

        telemetry = Telemetry()
        recovered = _build(
            "batched", telemetry=telemetry, wal_dir=tmp_path, snapshot_every=0
        )
        report = recovered.recover(_pipes())
        tracer = telemetry.tracer
        # One recover.run span wrapping one recover.hour per replayed hour.
        assert len(tracer.find_spans("recover.run")) == 1
        hour_spans = tracer.find_spans("recover.hour")
        assert len(hour_spans) == report.replayed_hours
        run_span = tracer.find_spans("recover.run")[0]
        assert all(s.parent_id == run_span.span_id for s in hour_spans)
        assert [s.hour for s in hour_spans] == list(range(report.replayed_hours))
        # The crash fired after the append but before commit_hour wrote
        # the digest record, so the final replayed hour has no digest to
        # verify -- the spans must agree with the report about which.
        checked = [s.args["digest_checked"] for s in hour_spans]
        assert sum(checked) == report.digests_verified
        assert checked == [True] * (report.replayed_hours - 1) + [False]
        # Replay recharges through charge.batch under each replayed hour.
        assert tracer.find_spans("charge.batch")
        # Gauges land without calling describe().
        metrics = telemetry.metrics
        assert metrics.gauge_value("sage_recovery_replayed_hours") == (
            report.replayed_hours
        )
        assert metrics.gauge_value("sage_recovery_digests_verified") == (
            report.digests_verified
        )
        assert report.digests_verified == report.replayed_hours - 1
        recovered.close()
        sage.close()

    def test_describe_emits_the_report_event(self, tmp_path):
        sage = _build("batched", wal_dir=tmp_path, snapshot_every=2)
        _drive(sage, 5)
        sage.close()
        telemetry = Telemetry()
        recovered = _build(
            "batched", telemetry=telemetry, wal_dir=tmp_path, snapshot_every=2
        )
        report = recovered.recover(_pipes())
        # A snapshot restore leaves its marker event.
        snapshot_events = telemetry.tracer.find_events("recover.snapshot")
        assert len(snapshot_events) == 1
        assert snapshot_events[0].args["hour"] == report.snapshot_hour

        described = report.describe(telemetry)
        assert f"replayed {report.replayed_hours} WAL hour(s)" in described
        if report.digests_verified:
            assert f"verified {report.digests_verified} commit digest(s)" in described
        report_events = telemetry.tracer.find_events("recover.report")
        assert len(report_events) == 1
        assert report_events[0].args["replayed_hours"] == report.replayed_hours
        assert report_events[0].args["digests_verified"] == report.digests_verified
        recovered.close()

    def test_describe_without_telemetry_is_pure(self):
        from repro.core.durability import RecoveryReport

        report = RecoveryReport(
            snapshot_hour=None,
            snapshots_skipped=0,
            replayed_hours=2,
            hours_committed=2,
            clock_hours=2.0,
            wal_records=2,
            truncated_tail=False,
            fresh_pipelines=0,
            digests_verified=2,
        )
        assert "verified 2 commit digest(s)" in report.describe()

    def test_armed_fault_trip_is_traced(self, tmp_path):
        telemetry = Telemetry()
        sage = _build("batched", telemetry=telemetry, wal_dir=tmp_path)
        for pipeline, config in _pipes():
            sage.submit(pipeline, config)
        with pytest.raises(faults.InjectedCrash):
            with faults.armed_crash("hour.after_commit"):
                sage.advance(1.0)
        trips = telemetry.tracer.find_events("fault.trip")
        assert [e.args["point"] for e in trips] == ["hour.after_commit"]
        assert (
            telemetry.metrics.counter_value(
                "sage_fault_trips_total", point="hour.after_commit"
            )
            == 1
        )
        sage.close()
