"""The deterministic tracer: tick clock, span nesting, replayability."""

import pytest

from repro.obs import Event, Span, TickClock, Tracer


class TestTickClock:
    def test_every_read_advances_one_tick(self):
        clock = TickClock()
        assert [clock() for _ in range(4)] == [1.0, 2.0, 3.0, 4.0]

    def test_fresh_clock_restarts(self):
        TickClock()()
        assert TickClock()() == 1.0


class TestSpans:
    def test_span_records_name_ticks_and_counter_id(self):
        tracer = Tracer()
        with tracer.span("advance.hour", mode="volatile") as span:
            pass
        assert tracer.spans == [span]
        assert (span.span_id, span.name) == (1, "advance.hour")
        assert (span.start, span.end) == (1.0, 2.0)
        assert span.duration == 1.0
        assert span.args == {"mode": "volatile"}
        assert span.category == "advance"

    def test_nesting_sets_parent_and_closes_inner_first(self):
        tracer = Tracer()
        with tracer.span("advance.hour") as outer:
            with tracer.span("session.drive") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Close order: inner lands in the list before the outer.
        assert tracer.spans == [inner, outer]
        assert outer.start < inner.start < inner.end < outer.end

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("advance.hour"):
                raise RuntimeError("mid-hour death")
        assert tracer.span_names() == ["advance.hour"]
        assert not tracer._open
        assert tracer.spans[0].end > tracer.spans[0].start

    def test_set_attaches_results_while_open(self):
        tracer = Tracer()
        with tracer.span("advance.open") as span:
            span.set(new_blocks=3)
        assert tracer.spans[0].args == {"new_blocks": 3}

    def test_ambient_hour_stamps_records(self):
        tracer = Tracer()
        tracer.hour = 7
        with tracer.span("advance.hour"):
            tracer.event("charge.granted")
        assert tracer.spans[0].hour == 7
        assert tracer.events[0].hour == 7


class TestEvents:
    def test_event_is_an_instant_with_args(self):
        tracer = Tracer()
        event = tracer.event("fault.trip", point="wal.after_append")
        assert tracer.events == [event]
        assert (event.event_id, event.ts) == (1, 1.0)
        assert event.args == {"point": "wal.after_append"}
        assert event.category == "fault"

    def test_spans_and_events_share_the_id_sequence(self):
        tracer = Tracer()
        with tracer.span("advance.hour") as span:
            event = tracer.event("charge.granted")
        assert (span.span_id, event.event_id) == (1, 2)


class TestDeterminism:
    def emit(self):
        tracer = Tracer()
        for hour in range(3):
            tracer.hour = hour
            with tracer.span("advance.hour"):
                with tracer.span("session.drive", session="p0") as s:
                    tracer.event("charge.granted", epsilon=0.25)
                    s.set(proposals=1)
            tracer.event("reservations.settle", sessions=1)
        return tracer

    def test_two_identical_emissions_are_identical(self):
        a, b = self.emit(), self.emit()
        key = lambda s: (s.span_id, s.parent_id, s.name, s.start, s.end, s.hour, s.args)  # noqa: E731
        assert [key(s) for s in a.spans] == [key(s) for s in b.spans]
        assert [(e.event_id, e.name, e.ts, e.hour, e.args) for e in a.events] == [
            (e.event_id, e.name, e.ts, e.hour, e.args) for e in b.events
        ]

    def test_injected_clock_replaces_ticks(self):
        reads = iter([10.0, 20.0])
        tracer = Tracer(clock=lambda: next(reads))
        with tracer.span("advance.hour") as span:
            pass
        assert (span.start, span.end) == (10.0, 20.0)

    def test_finders(self):
        tracer = self.emit()
        assert len(tracer.find_spans("session.drive")) == 3
        assert len(tracer.find_events("charge.granted")) == 3
        assert tracer.event_names().count("reservations.settle") == 3


class TestRecordBasics:
    def test_span_is_slotted(self):
        span = Span(1, None, "advance.hour", 1.0, 2.0, 0)
        with pytest.raises(AttributeError):
            span.arbitrary = 1

    def test_event_is_slotted(self):
        event = Event(1, "fault.trip", 1.0, 0)
        with pytest.raises(AttributeError):
            event.arbitrary = 1

    def test_reprs_name_the_record(self):
        assert "advance.hour" in repr(Span(1, None, "advance.hour", 1.0, 2.0, 0))
        assert "fault.trip" in repr(Event(1, "fault.trip", 1.0, 0))
