"""The perf trajectory store: history IO, baselines, the regression gate,
and the bench writer that feeds it."""

import json
import sys
from datetime import datetime
from pathlib import Path

import pytest

from repro.obs import perfdb

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import benchjson  # noqa: E402  (the bench helper lives outside src/)


def _case(name, speedup, bench=""):
    return {
        "name": name,
        "bench": bench,
        "params": {},
        "scalar_ms": 10.0,
        "vectorized_ms": (10.0 / speedup) if speedup else 0.0,
        "speedup": speedup,
    }


def _history(*speedups, name="block_scan_5000", bench="block_scan"):
    return [_case(name, s, bench=bench) for s in speedups]


class TestRunMetadata:
    def test_carries_the_provenance_fields(self):
        meta = perfdb.run_metadata()
        assert set(meta) == {"git_sha", "timestamp", "host", "python", "numpy"}
        assert meta["git_sha"] is None or (
            len(meta["git_sha"]) == 40
            and all(c in "0123456789abcdef" for c in meta["git_sha"])
        )
        # ISO-8601 with timezone, second precision.
        stamp = datetime.fromisoformat(meta["timestamp"])
        assert stamp.tzinfo is not None
        assert isinstance(meta["host"], str)
        assert meta["python"].count(".") == 2

    def test_is_json_serializable(self):
        json.dumps(perfdb.run_metadata())


class TestHistoryIO:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = _case("a", 2.0)
        second = _case("b", 3.0)
        assert perfdb.append_history(first, path) == path
        perfdb.append_history(second, path)
        assert perfdb.load_history(path) == [first, second]

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "history.jsonl"
        perfdb.append_history(_case("a", 2.0), path)
        assert perfdb.load_history(path) == [_case("a", 2.0)]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert perfdb.load_history(tmp_path / "absent.jsonl") == []

    def test_torn_blank_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = _case("a", 2.0)
        path.write_text(
            "\n".join(
                [
                    json.dumps(good),
                    '{"name": "torn", "speedup":',  # torn mid-write
                    "",
                    "[1, 2, 3]",  # not a dict
                    '{"speedup": 2.0}',  # dict without a name
                    json.dumps(good),
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        assert perfdb.load_history(path) == [good, good]


class TestCaseKeys:
    def test_bench_prefixes_unless_the_name_already_carries_it(self):
        history = [
            _case("block_scan_5000", 2.0, bench="block_scan"),
            _case("serial_vs_parallel", 2.0, bench="lint"),
            _case("legacy", 2.0),
        ]
        assert set(perfdb.compute_baselines(history)) == {
            "block_scan_5000",
            "lint/serial_vs_parallel",
            "legacy",
        }


class TestBaselines:
    def test_median_latest_and_run_count(self):
        baselines = perfdb.compute_baselines(_history(2.0, 4.0, 3.0))
        base = baselines["block_scan_5000"]
        assert base.runs == 3
        assert base.median_speedup == 3.0
        assert base.latest_speedup == 3.0

    def test_null_and_nonpositive_speedups_do_not_count(self):
        history = _history(2.0) + [
            _case("block_scan_5000", None, bench="block_scan"),
            _case("block_scan_5000", 0.0, bench="block_scan"),
        ]
        base = perfdb.compute_baselines(history)["block_scan_5000"]
        assert base.runs == 1 and base.latest_speedup is None
        assert perfdb.compute_baselines([_case("x", None)]) == {}


class TestRegressionGate:
    def test_collapse_below_the_band_fails(self):
        history = _history(2.0, 2.2, 2.4, 0.5)
        (regression,) = perfdb.check_regressions(history)
        assert regression.case == "block_scan_5000"
        assert regression.baseline == 2.2
        assert regression.latest == 0.5
        assert regression.floor == pytest.approx(2.2 * 0.35)
        assert regression.runs == 3
        assert "fell below" in regression.describe()

    def test_stable_history_passes(self):
        assert perfdb.check_regressions(_history(2.0, 2.2, 2.1)) == []

    def test_a_case_needs_at_least_one_prior(self):
        # The seeded committed history exists precisely so the first CI
        # run has priors; a lone record is never gated.
        assert perfdb.check_regressions(_history(0.01)) == []

    def test_band_overrides_gate_per_case(self):
        history = _history(2.0, 2.2, 2.4, 1.9)
        assert perfdb.check_regressions(history) == []
        (regression,) = perfdb.check_regressions(
            history, bands={"block_scan_5000": 0.9}
        )
        assert regression.band == 0.9
        assert regression.floor == pytest.approx(2.2 * 0.9)

    def test_worst_collapse_sorts_first(self):
        history = _history(2.0, 2.0, 0.5) + _history(
            4.0, 4.0, 0.1, name="renyi_scan", bench="renyi_filter"
        )
        regressions = perfdb.check_regressions(history)
        assert [r.case for r in regressions] == [
            "renyi_filter/renyi_scan",
            "block_scan_5000",
        ]


class TestRenderReport:
    def test_flags_regressions_with_a_detail_block(self):
        text = perfdb.render_report(_history(2.0, 2.2, 0.3))
        assert "<< REGRESSION" in text
        assert "fell below" in text
        assert "block_scan_5000" in text

    def test_clean_history_says_so(self):
        text = perfdb.render_report(_history(2.0, 2.2, 2.1))
        assert "no regressions" in text
        assert "1 case(s)" in text and "3 record(s)" in text


class TestWriteBenchJson:
    @pytest.fixture
    def sandbox(self, tmp_path, monkeypatch):
        results = tmp_path / "results"
        history = results / "perf_history.jsonl"
        monkeypatch.setattr(benchjson, "RESULTS_DIR", results)
        monkeypatch.setattr(perfdb, "HISTORY_PATH", history)
        return results, history

    def test_writes_payload_and_appends_history(self, sandbox):
        results, history = sandbox
        payload = benchjson.write_bench_json(
            "demo_case", {"blocks": 5}, 10.0, 2.0, bench="demo"
        )
        assert payload["speedup"] == 5.0
        assert payload["bench"] == "demo"
        assert set(payload["meta"]) == {
            "git_sha",
            "timestamp",
            "host",
            "python",
            "numpy",
        }
        on_disk = json.loads(
            (results / "bench_demo_case.json").read_text(encoding="utf-8")
        )
        assert on_disk == payload
        assert perfdb.load_history(history) == [payload]

    def test_zero_fast_time_yields_null_speedup(self, sandbox):
        payload = benchjson.write_bench_json("demo_case", {}, 10.0, 0.0)
        assert payload["speedup"] is None

    def test_rejects_unserializable_params_before_writing(self, sandbox):
        results, history = sandbox
        with pytest.raises(TypeError, match="JSON-serializable"):
            benchjson.write_bench_json(
                "bad_case", {"sink": object()}, 10.0, 2.0
            )
        assert not results.exists()
        assert perfdb.load_history(history) == []

    def test_report_renders_from_the_written_payloads(self, sandbox):
        cases = [
            benchjson.write_bench_json("demo_a", {}, 10.0, 2.0, bench="demo"),
            benchjson.write_bench_json("demo_b", {}, 10.0, 0.0, bench="demo"),
        ]
        results, _ = sandbox
        table = benchjson.write_bench_report(
            "demo", "demo bench", cases, columns=("before", "after"),
            notes=("a note",),
        )
        assert "before" in table and "after" in table
        assert "5.0x" in table and "--" in table
        assert table.endswith("a note")
        assert (results / "bench_demo.txt").read_text(
            encoding="utf-8"
        ) == table + "\n"
