"""The metrics registry: instruments, snapshots, platform observers."""

import pytest

from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.core.sharding import sharded_accountant_factory
from repro.obs import BUCKET_BOUNDS, MetricsRegistry, Telemetry
from repro.workload.oracle import CountStreamSource, OraclePipeline


def drive_demo(hours=4, pipelines=3, **sage_kwargs):
    sage = Sage(CountStreamSource(4000, scale=1000), seed=5, **sage_kwargs)
    for i in range(pipelines):
        sage.submit(
            OraclePipeline(name=f"p{i}", n_at_eps1=3_000.0 * (2.0 ** i)),
            AdaptiveConfig(max_attempts=16),
        )
    for _ in range(hours):
        sage.advance(1.0)
    return sage


class TestInstruments:
    def test_counters_accumulate_and_default_to_zero(self):
        registry = MetricsRegistry()
        registry.inc("sage_charges_granted_total")
        registry.inc("sage_charges_granted_total", 2)
        assert registry.counter_value("sage_charges_granted_total") == 3
        assert registry.counter_value("sage_charges_denied_total") == 0

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.inc("sage_fault_trips_total", point="wal.after_append")
        registry.inc("sage_fault_trips_total", point="hour.after_commit")
        registry.inc("sage_fault_trips_total", point="wal.after_append")
        assert (
            registry.counter_value("sage_fault_trips_total", point="wal.after_append")
            == 2
        )
        assert (
            registry.counter_value("sage_fault_trips_total", point="hour.after_commit")
            == 1
        )

    def test_gauges_keep_the_latest_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("sage_privacy_epsilon_spent", 0.25)
        registry.set_gauge("sage_privacy_epsilon_spent", 0.75)
        assert registry.gauge_value("sage_privacy_epsilon_spent") == 0.75
        assert registry.gauge_value("nope", default=-1.0) == -1.0

    def test_histogram_tracks_count_sum_min_max(self):
        registry = MetricsRegistry()
        for value in (2.0, 17.0, 2.0):
            registry.observe("sage_staged_batch_requests", value)
        hist = registry.histogram_value("sage_staged_batch_requests")
        assert hist["count"] == 3
        assert hist["sum"] == 21.0
        assert (hist["min"], hist["max"]) == (2.0, 17.0)

    def test_bucket_bounds_are_powers_of_four(self):
        assert BUCKET_BOUNDS[:4] == (1.0, 4.0, 16.0, 64.0)
        assert len(BUCKET_BOUNDS) == 11


class TestSnapshot:
    def test_histogram_buckets_are_cumulative_le_counts(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 100.0):
            registry.observe("sage_wal_append_bytes", value)
        buckets = registry.snapshot()["histograms"]["sage_wal_append_bytes"][
            "buckets"
        ]
        assert buckets["1"] == 1       # just the 1.0 sample
        assert buckets["4"] == 2       # + the 3.0 sample
        assert buckets["64"] == 2      # nothing between 4 and 64
        assert buckets["256"] == 3     # + the 100.0 sample
        assert buckets["+Inf"] == 3

    def test_snapshot_keys_are_sorted_and_rendered(self):
        registry = MetricsRegistry()
        registry.set_gauge("sage_block_epsilon", 0.5, block="b")
        registry.set_gauge("sage_block_epsilon", 0.25, block="a")
        gauges = registry.snapshot()["gauges"]
        assert list(gauges) == [
            'sage_block_epsilon{block="a"}',
            'sage_block_epsilon{block="b"}',
        ]

    def test_snapshot_of_empty_registry(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestPlatformCounters:
    def test_drive_counters_and_last_hour_compat(self):
        telemetry = Telemetry()
        sage = drive_demo(hours=4, telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics is sage.metrics
        assert metrics.counter_value("sage_hours_advanced_total") == 4
        assert metrics.counter_value("sage_sessions_driven_total") > 0
        assert metrics.counter_value("sage_charges_granted_total") > 0
        # The compat properties are per-hour deltas over the registry.
        assert sage.last_hour_charges == metrics.gauge_value("sage_hour_charges")
        assert sage.last_hour_speculations == (
            metrics.gauge_value("sage_hour_speculations_adopted"),
            metrics.gauge_value("sage_hour_speculations_invalidated"),
        )
        sage.close()

    def test_counters_work_without_telemetry(self):
        # The registry is always present; only the tracer is optional.
        sage = drive_demo(hours=2)
        assert sage.telemetry is None
        assert sage.metrics.counter_value("sage_hours_advanced_total") == 2
        assert sage.last_hour_charges >= 0
        sage.close()

    def test_staged_batch_histogram_fills(self):
        sage = drive_demo(hours=3)
        hist = sage.metrics.histogram_value("sage_staged_batch_requests")
        assert hist is not None and hist["count"] == 3
        sage.close()


class TestObservers:
    def test_observe_privacy_gauges(self):
        sage = drive_demo(hours=4)
        registry = sage.metrics
        registry.observe_privacy(sage.access.accountant)
        spent = registry.gauge_value("sage_privacy_epsilon_spent")
        headroom = registry.gauge_value("sage_privacy_epsilon_headroom")
        assert spent > 0.0
        assert spent + headroom == pytest.approx(1.0)
        total = registry.gauge_value("sage_privacy_blocks_total")
        assert total == len(sage.access.accountant.block_keys)
        assert registry.gauge_value(
            "sage_privacy_blocks_live"
        ) + registry.gauge_value("sage_privacy_blocks_retired") == total
        # The default accountant runs the basic filter: no order grid, so
        # the saturation gauges stay unset.
        assert registry.gauge_value("sage_privacy_renyi_orders", default=-1.0) == -1.0
        sage.close()

    def test_observe_privacy_renyi_order_saturation(self):
        from repro.core.filters import RenyiCompositionFilter

        sage = drive_demo(hours=4, filter_factory=RenyiCompositionFilter)
        registry = sage.metrics
        registry.observe_privacy(sage.access.accountant)
        assert registry.gauge_value("sage_privacy_renyi_orders") > 0
        saturation = registry.gauge_value(
            "sage_privacy_renyi_order_saturation", default=-1.0
        )
        assert 0.0 <= saturation <= 1.0
        sage.close()

    def test_observe_privacy_shard_bounds(self):
        sage = drive_demo(hours=3, accountant_factory=sharded_accountant_factory(4))
        registry = sage.metrics
        registry.observe_privacy(sage.access.accountant)
        bounds = [
            registry.gauge_value("sage_shard_epsilon_bound", default=-1.0, shard=s)
            for s in range(4)
        ]
        assert all(bound >= 0.0 for bound in bounds)
        sage.close()

    def test_observe_dashboard_matches_loss_dashboard(self):
        from repro.core.odometer import loss_dashboard

        sage = drive_demo(hours=4)
        registry = sage.metrics
        observed = registry.observe_dashboard(sage.access.accountant)
        dashboard = loss_dashboard(sage.access.accountant)
        assert observed == len(dashboard)
        for key, loss in dashboard.items():
            assert registry.gauge_value(
                "sage_block_epsilon", block=key
            ) == pytest.approx(loss.epsilon)
            assert registry.gauge_value(
                "sage_block_delta", block=key
            ) == pytest.approx(loss.delta)
        sage.close()

    def test_observe_dashboard_sharded_single_pass(self):
        from repro.core.odometer import loss_dashboard

        sage = drive_demo(hours=4, accountant_factory=sharded_accountant_factory(4))
        registry = sage.metrics
        registry.observe_dashboard(sage.access.accountant)
        for key, loss in loss_dashboard(sage.access.accountant).items():
            assert registry.gauge_value(
                "sage_block_epsilon", block=key
            ) == pytest.approx(loss.epsilon)
        sage.close()

    def test_observe_recovery_gauges(self):
        from repro.core.durability import RecoveryReport

        registry = MetricsRegistry()
        registry.observe_recovery(
            RecoveryReport(
                snapshot_hour=2,
                snapshots_skipped=0,
                replayed_hours=3,
                hours_committed=5,
                clock_hours=5.0,
                wal_records=3,
                truncated_tail=False,
                fresh_pipelines=1,
                digests_verified=3,
            )
        )
        assert registry.gauge_value("sage_recovery_snapshot_hour") == 2
        assert registry.gauge_value("sage_recovery_replayed_hours") == 3
        assert registry.gauge_value("sage_recovery_hours_committed") == 5
        assert registry.gauge_value("sage_recovery_digests_verified") == 3
        assert registry.gauge_value("sage_recovery_fresh_pipelines") == 1
