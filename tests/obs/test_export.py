"""Exporters: pinned goldens, Chrome trace schema, byte determinism."""

import json

from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    chrome_trace,
    render_chrome_trace,
    render_json,
    render_prometheus,
    write_chrome_trace,
)
from repro.workload.oracle import CountStreamSource, OraclePipeline


def tiny_registry():
    registry = MetricsRegistry()
    registry.inc("sage_charges_granted_total", 3)
    registry.inc("sage_fault_trips_total", point="wal.after_append")
    registry.set_gauge("sage_privacy_epsilon_spent", 0.75)
    registry.set_gauge("sage_block_epsilon", 0.5, block="0")
    registry.observe("sage_staged_batch_requests", 3.0)
    registry.observe("sage_staged_batch_requests", 9.0)
    return registry


def tiny_tracer():
    tracer = Tracer()
    tracer.hour = 0
    with tracer.span("advance.hour", mode="volatile"):
        with tracer.span("session.drive", session="p0"):
            tracer.event("charge.granted", epsilon=0.25)
    return tracer


JSON_GOLDEN = """\
{
  "counters": {
    "sage_charges_granted_total": 3,
    "sage_fault_trips_total{point=\\"wal.after_append\\"}": 1
  },
  "gauges": {
    "sage_block_epsilon{block=\\"0\\"}": 0.5,
    "sage_privacy_epsilon_spent": 0.75
  },
  "histograms": {
    "sage_staged_batch_requests": {
      "buckets": {
        "+Inf": 2,
        "1": 0,
        "1024": 2,
        "1048576": 2,
        "16": 2,
        "16384": 2,
        "256": 2,
        "262144": 2,
        "4": 1,
        "4096": 2,
        "64": 2,
        "65536": 2
      },
      "count": 2,
      "max": 9.0,
      "min": 3.0,
      "sum": 12.0
    }
  }
}
"""

PROMETHEUS_GOLDEN = """\
# TYPE sage_charges_granted_total counter
sage_charges_granted_total 3
# TYPE sage_fault_trips_total counter
sage_fault_trips_total{point="wal.after_append"} 1
# TYPE sage_block_epsilon gauge
sage_block_epsilon{block="0"} 0.5
# TYPE sage_privacy_epsilon_spent gauge
sage_privacy_epsilon_spent 0.75
# TYPE sage_staged_batch_requests histogram
sage_staged_batch_requests_bucket{le="1"} 0
sage_staged_batch_requests_bucket{le="4"} 1
sage_staged_batch_requests_bucket{le="16"} 2
sage_staged_batch_requests_bucket{le="64"} 2
sage_staged_batch_requests_bucket{le="256"} 2
sage_staged_batch_requests_bucket{le="1024"} 2
sage_staged_batch_requests_bucket{le="4096"} 2
sage_staged_batch_requests_bucket{le="16384"} 2
sage_staged_batch_requests_bucket{le="65536"} 2
sage_staged_batch_requests_bucket{le="262144"} 2
sage_staged_batch_requests_bucket{le="1048576"} 2
sage_staged_batch_requests_bucket{le="+Inf"} 2
sage_staged_batch_requests_sum 12
sage_staged_batch_requests_count 2
"""


class TestGoldens:
    def test_json_golden(self):
        assert render_json(tiny_registry()) == JSON_GOLDEN

    def test_prometheus_golden(self):
        assert render_prometheus(tiny_registry()) == PROMETHEUS_GOLDEN

    def test_chrome_trace_golden(self):
        doc = chrome_trace(tiny_tracer())
        assert doc == {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {
                    "name": "advance.hour",
                    "cat": "advance",
                    "ph": "X",
                    "ts": 1.0,
                    "dur": 4.0,
                    "pid": 1,
                    "tid": 1,
                    "id": 1,
                    "args": {"hour": 0, "parent": None, "mode": "volatile"},
                },
                {
                    "name": "session.drive",
                    "cat": "session",
                    "ph": "X",
                    "ts": 2.0,
                    "dur": 2.0,
                    "pid": 1,
                    "tid": 1,
                    "id": 2,
                    "args": {"hour": 0, "parent": 1, "session": "p0"},
                },
                {
                    "name": "charge.granted",
                    "cat": "charge",
                    "ph": "i",
                    "s": "t",
                    "ts": 3.0,
                    "pid": 1,
                    "tid": 1,
                    "id": 3,
                    "args": {"hour": 0, "epsilon": 0.25},
                },
            ],
        }


def drive_traced(hours=4):
    telemetry = Telemetry()
    sage = Sage(CountStreamSource(4000, scale=1000), seed=5, telemetry=telemetry)
    for i in range(3):
        sage.submit(
            OraclePipeline(name=f"p{i}", n_at_eps1=3_000.0 * (2.0 ** i)),
            AdaptiveConfig(max_attempts=16),
        )
    for _ in range(hours):
        sage.advance(1.0)
    telemetry.metrics.observe_privacy(sage.access.accountant)
    telemetry.metrics.observe_dashboard(sage.access.accountant)
    sage.close()
    return telemetry


class TestFullDriveDeterminism:
    def test_every_export_is_byte_identical_run_to_run(self):
        a, b = drive_traced(), drive_traced()
        assert render_json(a.metrics) == render_json(b.metrics)
        assert render_prometheus(a.metrics) == render_prometheus(b.metrics)
        assert render_chrome_trace(a.tracer) == render_chrome_trace(b.tracer)

    def test_chrome_trace_schema(self):
        doc = chrome_trace(drive_traced().tracer)
        events = doc["traceEvents"]
        assert events, "a traced drive must produce events"
        for event in events:
            assert event["ph"] in ("X", "i")
            assert (event["pid"], event["tid"]) == (1, 1)
            assert isinstance(event["ts"], float)
            assert "hour" in event["args"]
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "parent" in event["args"]
        # Sorted by (ts, id): one deterministic timeline.
        keys = [(e["ts"], e["id"]) for e in events]
        assert keys == sorted(keys)

    def test_write_chrome_trace_atomic_roundtrip(self, tmp_path):
        telemetry = drive_traced(hours=2)
        out = tmp_path / "nested" / "trace.json"
        returned = write_chrome_trace(telemetry.tracer, out)
        assert returned == out
        assert not out.with_name(out.name + ".tmp").exists()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload == chrome_trace(telemetry.tracer)
