"""WallProfiler mechanics under a deterministic injected clock.

Wall time itself is not replayable, so every test here swaps the
``perf_counter`` clock for a manually stepped one -- durations become
exact and the profiler's span mechanics (nesting, back-dated
``record_span`` emission, aggregation, the tee probe) are assertable to
the microsecond.
"""

import time

from repro.obs import Probe, Telemetry, Tracer, WallClock, WallProfiler
from repro.obs.profile import _percentile, render_profile


class ManualClock:
    """A clock the test advances by hand (microseconds, like WallClock)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _profiler():
    clock = ManualClock()
    return WallProfiler(clock=clock), clock


class TestWallClock:
    def test_reads_perf_counter_in_microseconds(self):
        clock = WallClock()
        before = time.perf_counter() * 1e6
        reading = clock()
        after = time.perf_counter() * 1e6
        assert before <= reading <= after

    def test_is_the_default_profiler_clock(self):
        assert isinstance(WallProfiler()._clock, WallClock)


class TestSpanMechanics:
    def test_nested_spans_carry_exact_wall_durations(self):
        prof, clock = _profiler()
        prof.hour = 3
        with prof.span("advance.hour", mode="volatile"):
            clock.now = 100.0
            with prof.span("advance.open"):
                clock.now = 130.0
            clock.now = 150.0
            with prof.span("session.drive", session="p0"):
                clock.now = 160.0
            clock.now = 400.0
        hour = prof.find_spans("advance.hour")[0]
        assert hour.duration == 400.0
        assert hour.hour == 3 and hour.args == {"mode": "volatile"}
        assert prof.find_spans("advance.open")[0].duration == 30.0
        assert prof.find_spans("session.drive")[0].duration == 10.0
        # Children parent under the hour span; close order holds.
        assert all(
            s.parent_id == hour.span_id
            for s in prof.spans
            if s is not hour
        )
        assert [s.name for s in prof.spans] == [
            "advance.open",
            "session.drive",
            "advance.hour",
        ]

    def test_record_span_backdates_from_the_current_reading(self):
        prof, clock = _profiler()
        clock.now = 50.0
        with prof.span("charge.batch"):
            clock.now = 80.0
            span = prof.record_span("shard.validate", 70.0, shard=1)
            clock.now = 90.0
        assert span.end == 80.0 and span.start == 10.0
        assert span.duration == 70.0
        assert span.args == {"shard": 1}
        parent = prof.find_spans("charge.batch")[0]
        assert span.parent_id == parent.span_id
        # The synthesized span is appended at record time -- before the
        # enclosing span closes, like a live child.
        assert prof.spans[0] is span and prof.spans[1] is parent

    def test_record_span_without_an_open_span_is_a_root(self):
        prof, clock = _profiler()
        clock.now = 25.0
        span = prof.record_span("orphan", 10.0)
        assert span.parent_id is None
        assert (span.start, span.end) == (15.0, 25.0)


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.95) == 0.0

    def test_single_value_is_every_percentile(self):
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([7.0], 0.95) == 7.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert _percentile(values, 0.50) == 20.0  # rank ceil(2.0) = 2
        assert _percentile(values, 0.95) == 40.0  # rank ceil(3.8) = 4
        assert _percentile(values, 0.25) == 10.0  # rank ceil(1.0) = 1


class TestAggregate:
    def _drive(self, prof, clock):
        prof.hour = 0
        with prof.span("advance.hour"):
            clock.now = 100.0
            with prof.span("session.drive"):
                clock.now = 130.0
            clock.now = 150.0
            with prof.span("session.drive"):
                clock.now = 160.0
            clock.now = 200.0
            prof.record_span("shard.validate", 25.0, shard=0)
            prof.record_span("shard.validate", 35.0, shard=1)
            clock.now = 400.0

    def test_per_name_stats(self):
        prof, clock = self._setup()
        stats = prof.aggregate()
        drive = stats["session.drive"]
        assert drive.count == 2
        assert drive.total == 40.0
        assert drive.self_time == 40.0
        assert (drive.p50, drive.p95, drive.max) == (10.0, 30.0, 30.0)
        hour = stats["advance.hour"]
        assert hour.count == 1 and hour.total == 400.0
        # self = 400 - (30 + 10 + 25 + 35) children.
        assert hour.self_time == 300.0

    def test_by_shard_decomposition(self):
        prof, clock = self._setup()
        shard_stats = prof.aggregate()["shard.validate"]
        assert shard_stats.count == 2 and shard_stats.total == 60.0
        assert sorted(shard_stats.by_shard) == [0, 1]
        assert shard_stats.by_shard[0].total == 25.0
        assert shard_stats.by_shard[1].total == 35.0
        assert all(
            sub.count == 1 for sub in shard_stats.by_shard.values()
        )
        # Unsharded names get no sub-rows.
        assert prof.aggregate()["session.drive"].by_shard == {}

    def test_pool_parallel_children_clamp_parent_self_time(self):
        prof, clock = _profiler()
        with prof.span("charge.batch"):
            clock.now = 40.0
            # Shards validated concurrently: their walls out-sum the
            # serial parent.  Self time clamps at zero, never negative.
            prof.record_span("shard.validate", 30.0, shard=0)
            prof.record_span("shard.validate", 30.0, shard=1)
        stats = prof.aggregate()
        assert stats["charge.batch"].self_time == 0.0
        assert stats["shard.validate"].total == 60.0

    def test_render_profile_lists_shard_subrows_and_total(self):
        prof, clock = self._setup()
        text = render_profile(prof)
        assert "advance.hour" in text
        assert "  [shard 0]" in text and "  [shard 1]" in text
        assert "(total self time)" in text
        # Largest self time renders first (after the header).
        assert text.splitlines()[1].startswith("advance.hour")

    def _setup(self):
        prof, clock = _profiler()
        self._drive(prof, clock)
        return prof, clock


class TestProbe:
    def _probe(self):
        tracer = Tracer()
        prof, clock = _profiler()
        return Probe(tracer, prof), tracer, prof, clock

    def test_hour_fans_out_to_both_halves(self):
        probe, tracer, prof, _ = self._probe()
        probe.hour = 7
        assert tracer.hour == 7 and prof.hour == 7
        assert probe.hour == 7

    def test_span_tees_to_both_with_the_tracer_primary(self):
        probe, tracer, prof, clock = self._probe()
        with probe.span("wal.fsync", records=3) as tee:
            clock.now = 500.0
            tee.set(bytes=128)
        assert len(tracer.spans) == 1 and len(prof.spans) == 1
        logical, wall = tracer.spans[0], prof.spans[0]
        # set() forwards to both halves.
        assert logical.args == {"records": 3, "bytes": 128}
        assert wall.args == {"records": 3, "bytes": 128}
        # duration/args delegate to the deterministic half: the tick
        # clock read twice (enter + exit) gives exactly 1 tick.
        assert tee.duration == logical.duration == 1.0
        assert wall.duration == 500.0
        assert tee.args is logical.args

    def test_event_hits_both_and_returns_the_tracer_record(self):
        probe, tracer, prof, _ = self._probe()
        record = probe.event("charge.granted", session="p0")
        assert record is tracer.events[0]
        assert len(prof.events) == 1
        assert prof.events[0].args == {"session": "p0"}

    def test_tracer_ticks_do_not_depend_on_the_profiler(self):
        # The same emission sequence against a bare tracer and a teed
        # probe: the deterministic records must be identical.
        def emit(handle):
            handle.hour = 0
            with handle.span("advance.hour"):
                with handle.span("session.drive"):
                    pass
                handle.event("charge.granted")

        bare = Tracer()
        emit(bare)
        teed_tracer = Tracer()
        emit(Probe(teed_tracer, WallProfiler(clock=ManualClock())))
        key = lambda t: [
            (s.span_id, s.parent_id, s.name, s.start, s.end, s.hour)
            for s in t.spans
        ]
        assert key(bare) == key(teed_tracer)
        assert [(e.event_id, e.ts) for e in bare.events] == [
            (e.event_id, e.ts) for e in teed_tracer.events
        ]


class TestTelemetryWiring:
    def test_probe_is_the_tracer_without_a_profiler(self):
        telemetry = Telemetry()
        assert telemetry.profiler is None
        assert telemetry.probe is telemetry.tracer

    def test_probe_tees_when_a_profiler_attaches(self):
        profiler = WallProfiler()
        telemetry = Telemetry(profiler=profiler)
        assert telemetry.profiler is profiler
        assert isinstance(telemetry.probe, Probe)
        assert telemetry.probe.tracer is telemetry.tracer
        assert telemetry.probe.profiler is profiler
