"""Span-tree analytics and the exporter round trips.

The two loader contracts documented in :mod:`repro.obs.analyze` are
golden-tested and property-tested here:

* Chrome trace JSON loads back into the same span tree --
  ``span_tree_shape(load_chrome_trace(chrome_trace(t))) ==
  span_tree_shape(t)`` over arbitrary forests;
* collapsed stacks are a fixed point --
  ``collapsed_stacks(load_collapsed(text)) == text`` exactly.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Event, Span, Tracer, chrome_trace
from repro.obs.analyze import (
    LoadedTrace,
    collapsed_stacks,
    critical_path,
    diff_profiles,
    hour_coverage,
    load_chrome_trace,
    load_collapsed,
    phase_breakdown,
    render_breakdown,
    render_critical_path,
    render_diff,
    self_times,
    span_forest,
    span_tree_shape,
    write_collapsed,
)


def _span(span_id, parent, name, start, end, hour=0, **args):
    return Span(span_id, parent, name, float(start), float(end), hour, args)


def _source(*spans, events=()):
    return LoadedTrace(list(spans), list(events))


def _demo_tracer():
    """A small deterministic drive-shaped trace (tick clock)."""
    tracer = Tracer()
    tracer.hour = 0
    with tracer.span("advance.hour", mode="durable"):
        with tracer.span("advance.open"):
            pass
        tracer.event("charge.granted", session="p0")
        with tracer.span("session.drive", session="p0"):
            with tracer.span("charge.batch", requests=2):
                pass
        with tracer.span("staging.commit"):
            pass
    return tracer


class TestForestAndSelfTimes:
    def test_forest_links_parents_and_orders_children_by_start(self):
        src = _source(
            _span(1, None, "root", 0, 100),
            _span(3, 1, "late", 50, 70),
            _span(2, 1, "early", 10, 30),
        )
        roots = span_forest(src)
        assert len(roots) == 1 and roots[0].span.name == "root"
        assert [c.span.name for c in roots[0].children] == ["early", "late"]

    def test_equal_starts_tie_break_on_span_id(self):
        src = _source(
            _span(1, None, "root", 0, 100),
            _span(3, 1, "b", 10, 30),
            _span(2, 1, "a", 10, 20),
        )
        assert [
            c.span.span_id for c in span_forest(src)[0].children
        ] == [2, 3]

    def test_self_times_subtract_children(self):
        src = _source(
            _span(1, None, "root", 0, 100),
            _span(2, 1, "child", 10, 40),
        )
        selfs = self_times(src)
        assert selfs[1] == 70.0 and selfs[2] == 30.0

    def test_self_times_clamp_at_zero_for_pool_parallel_children(self):
        src = _source(
            _span(1, None, "charge.batch", 0, 40),
            _span(2, 1, "shard.validate", 0, 30),
            _span(3, 1, "shard.validate", 0, 30),
        )
        assert self_times(src)[1] == 0.0

    def test_shape_is_invariant_to_id_assignment_and_list_order(self):
        a = _source(
            _span(1, None, "root", 0, 100),
            _span(2, 1, "child", 10, 40, tag="x"),
        )
        b = _source(
            _span(9, 7, "child", 10, 40, tag="x"),
            _span(7, None, "root", 0, 100),
        )
        assert span_tree_shape(a) == span_tree_shape(b)
        assert span_tree_shape(a) != span_tree_shape(
            _source(_span(1, None, "root", 0, 100))
        )


class TestCriticalPath:
    def test_descends_into_the_longest_child(self):
        src = _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "advance.open", 0, 10),
            _span(3, 1, "session.drive", 10, 90),
            _span(4, 3, "charge.batch", 20, 30),
            _span(5, 3, "charge.batch", 40, 80),
        )
        (path,) = critical_path(src)
        assert [s.name for s in path] == [
            "advance.hour",
            "session.drive",
            "charge.batch",
        ]
        assert path[-1].span_id == 5

    def test_equal_durations_tie_break_on_lower_span_id(self):
        src = _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "a", 0, 50),
            _span(3, 1, "b", 50, 100),
        )
        (path,) = critical_path(src)
        assert path[1].span_id == 2

    def test_one_path_per_matching_root_in_start_order(self):
        src = _source(
            _span(1, None, "advance.hour", 0, 10),
            _span(2, None, "advance.hour", 10, 30),
        )
        paths = critical_path(src)
        assert [p[0].span_id for p in paths] == [1, 2]

    def test_finds_roots_nested_below_other_spans(self):
        src = _source(
            _span(1, None, "recover.run", 0, 100),
            _span(2, 1, "recover.hour", 0, 40),
            _span(3, 2, "charge.batch", 0, 30),
        )
        (path,) = critical_path(src, root_name="recover.hour")
        assert [s.name for s in path] == ["recover.hour", "charge.batch"]


class TestBreakdownAndCoverage:
    def _src(self):
        return _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "session.drive", 0, 60),
            _span(3, 1, "staging.commit", 60, 90),
        )

    def test_rows_sorted_by_self_time_then_name(self):
        rows = phase_breakdown(self._src())
        assert [r.name for r in rows] == [
            "session.drive",
            "staging.commit",
            "advance.hour",
        ]
        drive = rows[0]
        assert (drive.count, drive.total, drive.self_time) == (1, 60.0, 60.0)
        assert drive.share == 0.6

    def test_shares_sum_to_one_on_a_cleanly_nested_tree(self):
        assert math.isclose(
            sum(r.share for r in phase_breakdown(self._src())), 1.0
        )

    def test_coverage_is_explained_fraction_of_the_root(self):
        assert math.isclose(hour_coverage(self._src()), 0.9)

    def test_coverage_zero_when_no_root_matches(self):
        assert hour_coverage(self._src(), root_name="recover.hour") == 0.0
        assert hour_coverage(_source()) == 0.0

    def test_coverage_accepts_alternate_roots(self):
        src = _source(
            _span(1, None, "recover.hour", 0, 50),
            _span(2, 1, "charge.batch", 0, 40),
        )
        assert math.isclose(
            hour_coverage(src, root_name="recover.hour"), 0.8
        )


class TestDiff:
    def test_new_vanished_and_moved_phases(self):
        a = _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "gone", 0, 10),
        )
        b = _source(
            _span(1, None, "advance.hour", 0, 160),
            _span(2, 1, "fresh", 0, 5),
        )
        rows = {r.name: r for r in diff_profiles(a, b)}
        assert rows["fresh"].ratio == float("inf")
        assert rows["fresh"].count_a == 0 and rows["fresh"].total_b == 5.0
        assert rows["gone"].ratio == 0.0 and rows["gone"].count_b == 0
        hour = rows["advance.hour"]
        assert hour.delta == 60.0 and hour.ratio == 1.6
        # Biggest absolute movement first.
        assert diff_profiles(a, b)[0].name == "advance.hour"


class TestChromeRoundTrip:
    def test_golden_demo_trace_round_trips(self):
        tracer = _demo_tracer()
        doc = chrome_trace(tracer)
        loaded = load_chrome_trace(doc)
        assert span_tree_shape(loaded) == span_tree_shape(tracer)
        assert [s.name for s in loaded.spans] == [s.name for s in tracer.spans]
        assert [
            (e.name, e.ts, e.hour, e.args) for e in loaded.events
        ] == [(e.name, e.ts, e.hour, e.args) for e in tracer.events]

    def test_accepts_json_text_and_paths(self, tmp_path):
        tracer = _demo_tracer()
        doc = chrome_trace(tracer)
        text = json.dumps(doc)
        path = tmp_path / "trace.json"
        path.write_text(text, encoding="utf-8")
        for form in (doc, text, path):
            assert span_tree_shape(load_chrome_trace(form)) == span_tree_shape(
                tracer
            )

    def test_loaded_spans_come_back_in_close_order(self):
        tracer = _demo_tracer()
        loaded = load_chrome_trace(chrome_trace(tracer))
        ends = [s.end for s in loaded.spans]
        assert ends == sorted(ends)


@st.composite
def span_sources(draw):
    """Arbitrary well-formed span forests on an integer clock."""
    n = draw(st.integers(min_value=1, max_value=10))
    spans = []
    for span_id in range(1, n + 1):
        parent = (
            draw(st.sampled_from([None] + [s.span_id for s in spans]))
            if spans
            else None
        )
        start = draw(st.integers(min_value=0, max_value=300))
        duration = draw(st.integers(min_value=0, max_value=300))
        name = draw(
            st.sampled_from(
                ["advance.hour", "session.drive", "shard.validate", "leaf"]
            )
        )
        args = {}
        if draw(st.booleans()):
            args["shard"] = draw(st.integers(min_value=0, max_value=3))
        spans.append(
            Span(
                span_id,
                parent,
                name,
                float(start),
                float(start + duration),
                draw(st.integers(min_value=-1, max_value=2)),
                args,
            )
        )
    spans.sort(key=lambda s: (s.end, s.span_id))
    events = [
        Event(n + 1 + i, "charge.granted", float(i), 0, {"k": i})
        for i in range(draw(st.integers(min_value=0, max_value=2)))
    ]
    return LoadedTrace(spans, events)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(span_sources())
    def test_chrome_trace_preserves_the_span_tree(self, source):
        loaded = load_chrome_trace(chrome_trace(source))
        assert span_tree_shape(loaded) == span_tree_shape(source)
        assert [
            (e.name, e.ts, e.hour, e.args) for e in loaded.events
        ] == [(e.name, e.ts, e.hour, e.args) for e in source.events]

    @settings(max_examples=60, deadline=None)
    @given(span_sources())
    def test_collapsed_stacks_are_a_fixed_point(self, source):
        text = collapsed_stacks(source)
        assert collapsed_stacks(load_collapsed(text)) == text


class TestCollapsedStacks:
    def _src(self):
        return _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "charge.batch", 0, 60),
            _span(3, 2, "shard.validate", 0, 20, shard=0),
            _span(4, 2, "shard.validate", 20, 45, shard=1),
        )

    def test_one_line_per_node_with_self_weights(self):
        lines = collapsed_stacks(self._src()).splitlines()
        assert "advance.hour 40" in lines
        assert "advance.hour;charge.batch 15" in lines
        assert "advance.hour;charge.batch;shard.validate [shard 0] 20" in lines
        assert "advance.hour;charge.batch;shard.validate [shard 1] 25" in lines
        assert lines == sorted(lines)

    def test_zero_weight_frames_keep_the_tree_shape(self):
        src = _source(
            _span(1, None, "root", 0, 30),
            _span(2, 1, "all-of-it", 0, 30),
        )
        assert "root 0\n" in collapsed_stacks(src)

    def test_load_restores_shard_args_from_frame_labels(self):
        loaded = load_collapsed(collapsed_stacks(self._src()))
        shards = {
            s.args["shard"]: s.duration
            for s in loaded.find_spans("shard.validate")
        }
        assert shards == {0: 20.0, 1: 25.0}
        # Aggregate weights survive even though individual spans merge.
        assert sum(s.duration for s in loaded.find_spans("advance.hour")) == 100.0

    def test_identical_stacks_merge(self):
        src = _source(
            _span(1, None, "advance.hour", 0, 10),
            _span(2, None, "advance.hour", 10, 40),
        )
        assert collapsed_stacks(src) == "advance.hour 40\n"

    def test_write_collapsed_is_loadable(self, tmp_path):
        path = write_collapsed(self._src(), tmp_path / "flame.folded")
        assert path.exists()
        text = path.read_text(encoding="utf-8")
        assert collapsed_stacks(load_collapsed(path)) == text


class TestRenderers:
    def test_breakdown_table_has_rows_and_coverage_footer(self):
        tracer = _demo_tracer()
        text = render_breakdown(tracer)
        assert "advance.hour" in text and "session.drive" in text
        assert "hour coverage" in text

    def test_critical_path_lists_each_hour(self):
        text = render_critical_path(_demo_tracer())
        assert text.startswith("hour 0:")
        assert "advance.hour" in text

    def test_diff_marks_new_phases(self):
        a = _source(_span(1, None, "advance.hour", 0, 100))
        b = _source(
            _span(1, None, "advance.hour", 0, 100),
            _span(2, 1, "wal.fsync", 0, 5),
        )
        text = render_diff(a, b)
        assert "new" in text and "wal.fsync" in text
