"""CLI wiring (fast paths only; heavy subcommands smoke-tested in benches)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_args(self):
        args = build_parser().parse_args(["fig5", "taxi-lr", "--full", "--seeds", "2"])
        assert args.command == "fig5"
        assert args.config == "taxi-lr"
        assert args.full and args.seeds == 2

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "mnist"])

    def test_fig8_rates(self):
        args = build_parser().parse_args(["fig8", "--rates", "0.1", "0.4"])
        assert args.rates == [0.1, 0.4]


class TestExecution:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "taxi-lr" in out and "Counts x26" in out

    def test_fig8_tiny(self, capsys):
        assert main(["fig8", "--rates", "0.2", "--horizon", "40"]) == 0
        out = capsys.readouterr().out
        assert "block-conserve" in out


class TestDurabilityCommands:
    def test_wal_demo_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wal-demo"])

    def test_clean_run_then_recover_reports_same_digest(self, tmp_path, capsys):
        assert main(["wal-demo", "--wal-dir", str(tmp_path), "--hours", "3"]) == 0
        ran = capsys.readouterr().out
        assert "3 committed" in ran
        assert main(["recover", "--wal-dir", str(tmp_path)]) == 0
        recovered = capsys.readouterr().out
        assert "3 hour(s) committed" in recovered
        digest = next(l for l in ran.splitlines() if l.startswith("state digest"))
        assert digest in recovered

    def test_crash_then_recover_matches_shorter_clean_run(self, tmp_path, capsys):
        # hour.after_commit dies right after hour 0 lands in the WAL, so
        # recovery must rebuild exactly the one-hour state.
        crash_dir, clean_dir = tmp_path / "crash", tmp_path / "clean"
        assert (
            main(
                [
                    "wal-demo",
                    "--wal-dir",
                    str(crash_dir),
                    "--hours",
                    "3",
                    "--crash-at",
                    "hour.after_commit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "crashed at hour.after_commit" in out
        assert "charge log holds 1 hour(s)" in out
        assert main(["recover", "--wal-dir", str(crash_dir)]) == 0
        recovered = capsys.readouterr().out
        assert main(["wal-demo", "--wal-dir", str(clean_dir), "--hours", "1"]) == 0
        clean = capsys.readouterr().out
        digest = next(l for l in clean.splitlines() if l.startswith("state digest"))
        assert digest in recovered

    def test_unknown_crash_point_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["wal-demo", "--wal-dir", str(tmp_path), "--crash-at", "no.such.point"]
        )
        assert code == 1
        assert "unknown crash point" in capsys.readouterr().err

    def test_recover_without_manifest_is_a_clean_error(self, tmp_path, capsys):
        assert main(["recover", "--wal-dir", str(tmp_path / "nothere")]) == 1
        assert "manifest.json" in capsys.readouterr().err


def load_trace(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert set(payload) == {"displayTimeUnit", "traceEvents"}
    return payload["traceEvents"]


class TestObservabilityCommands:
    def test_obs_report_json(self, capsys):
        assert main(["obs-report", "--hours", "2", "--pipelines", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counters"]["sage_hours_advanced_total"] == 2
        assert report["counters"]["sage_charges_granted_total"] > 0
        assert report["gauges"]["sage_privacy_epsilon_spent"] > 0.0
        assert 'sage_block_epsilon{block="0"}' in report["gauges"]
        assert "sage_staged_batch_requests" in report["histograms"]

    def test_obs_report_prometheus(self, capsys):
        code = main(
            ["obs-report", "--hours", "2", "--shards", "2", "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE sage_charges_granted_total counter" in out
        assert 'sage_shard_epsilon_bound{shard="0"}' in out
        assert 'sage_staged_batch_requests_bucket{le="+Inf"}' in out

    def test_obs_report_is_deterministic(self, capsys):
        assert main(["obs-report", "--hours", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["obs-report", "--hours", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "drive.json"
        assert main(["trace", "--out", str(out_path), "--hours", "3"]) == 0
        summary = capsys.readouterr().out
        assert "3 hour(s)" in summary and str(out_path) in summary
        events = load_trace(out_path)
        names = {event["name"] for event in events}
        # The traced demo is sharded + durable, so the full taxonomy shows up.
        assert {
            "advance.hour",
            "session.drive",
            "charge.batch",
            "shard.validate",
            "shard.commit",
            "staging.commit",
            "wal.append",
            "wal.fsync",
            "snapshot.write",
        } <= names
        spans = [event for event in events if event["ph"] == "X"]
        assert spans and all(event["dur"] >= 0 for event in spans)

    def test_wal_demo_and_recover_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "crash.json"
        assert (
            main(
                [
                    "wal-demo",
                    "--wal-dir",
                    str(tmp_path / "wal"),
                    "--hours",
                    "3",
                    "--crash-at",
                    "hour.after_commit",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # The trace survives the simulated crash and records the trip itself.
        names = {event["name"] for event in load_trace(trace_path)}
        assert "fault.trip" in names and "wal.commit" in names

        recover_trace = tmp_path / "recover.json"
        assert (
            main(
                [
                    "recover",
                    "--wal-dir",
                    str(tmp_path / "wal"),
                    "--trace-out",
                    str(recover_trace),
                ]
            )
            == 0
        )
        assert "verified 1 commit digest(s)" in capsys.readouterr().out
        names = {event["name"] for event in load_trace(recover_trace)}
        assert {"recover.run", "recover.hour", "recover.report"} <= names


class TestPerfCommands:
    def test_profile_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.command == "profile"
        assert args.shards == 4 and args.out is None and args.flame_out is None

    def test_perf_diff_requires_both_traces(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf-diff", "only-one.json"])

    def test_profile_prints_breakdown_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        profile_path = tmp_path / "profile.json"
        flame_path = tmp_path / "flame.folded"
        assert (
            main(
                [
                    "profile",
                    "--hours",
                    "2",
                    "--pipelines",
                    "2",
                    "--out",
                    str(profile_path),
                    "--flame-out",
                    str(flame_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profiled 2 hour(s) over 4 shard(s)" in out
        assert "hour coverage" in out
        assert "advance.hour" in out and "hour 0:" in out
        # The Chrome export carries the profiler's wall-clock spans.
        events = load_trace(profile_path)
        assert {e["name"] for e in events} >= {"advance.hour", "wal.fsync"}
        # The collapsed stacks are flamegraph.pl input: "stack weight".
        lines = flame_path.read_text(encoding="utf-8").splitlines()
        assert lines and all(l.rpartition(" ")[2].isdigit() for l in lines)
        assert any(l.startswith("advance.hour") for l in lines)

    def test_wal_demo_profile_out_rides_alongside_the_trace(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        profile_path = tmp_path / "profile.json"
        assert (
            main(
                [
                    "wal-demo",
                    "--wal-dir",
                    str(tmp_path / "wal"),
                    "--hours",
                    "2",
                    "--trace-out",
                    str(trace_path),
                    "--profile-out",
                    str(profile_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written to" in out and "profile written to" in out
        # Same taxonomy, different clocks: the tracer's timestamps are
        # logical ticks (integers); the profiler's are perf_counter reads.
        trace_spans = [e for e in load_trace(trace_path) if e["ph"] == "X"]
        profile_spans = [e for e in load_trace(profile_path) if e["ph"] == "X"]
        assert {e["name"] for e in trace_spans} == {
            e["name"] for e in profile_spans
        }
        assert all(float(e["ts"]).is_integer() for e in trace_spans)

    def test_recover_profile_out(self, tmp_path, capsys):
        assert (
            main(["wal-demo", "--wal-dir", str(tmp_path / "wal"), "--hours", "2"])
            == 0
        )
        capsys.readouterr()
        profile_path = tmp_path / "recover-profile.json"
        assert (
            main(
                [
                    "recover",
                    "--wal-dir",
                    str(tmp_path / "wal"),
                    "--profile-out",
                    str(profile_path),
                ]
            )
            == 0
        )
        assert "profile written to" in capsys.readouterr().out
        names = {e["name"] for e in load_trace(profile_path)}
        assert {"recover.run", "recover.hour"} <= names

    def test_perf_diff_renders_per_phase_movement(self, tmp_path, capsys):
        before, after = tmp_path / "before.json", tmp_path / "after.json"
        assert main(["profile", "--hours", "1", "--out", str(before)]) == 0
        assert main(["profile", "--hours", "2", "--out", str(after)]) == 0
        capsys.readouterr()
        assert main(["perf-diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert f"perf diff: {before} -> {after}" in out
        assert "advance.hour" in out and "ratio" in out

    def _write_history(self, path, speedups):
        records = [
            {
                "name": "demo_case",
                "bench": "demo",
                "params": {},
                "scalar_ms": 10.0,
                "vectorized_ms": 10.0 / s,
                "speedup": s,
            }
            for s in speedups
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
        return path

    def test_perf_report_reads_a_history_file(self, tmp_path, capsys):
        history = self._write_history(tmp_path / "h.jsonl", [2.0, 2.2, 2.1])
        assert main(["perf-report", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "demo_case" in out
        assert "no regressions" in out

    def test_perf_report_check_fails_on_a_collapse(self, tmp_path, capsys):
        history = self._write_history(tmp_path / "h.jsonl", [2.0, 2.2, 0.3])
        # Without --check the report prints but the exit stays green.
        assert main(["perf-report", "--history", str(history)]) == 0
        assert "<< REGRESSION" in capsys.readouterr().out
        assert main(["perf-report", "--history", str(history), "--check"]) == 1
        assert "fell below" in capsys.readouterr().out

    def test_perf_report_check_passes_inside_the_band(self, tmp_path, capsys):
        history = self._write_history(tmp_path / "h.jsonl", [2.0, 2.2, 2.1])
        assert main(["perf-report", "--history", str(history), "--check"]) == 0
        capsys.readouterr()

    def test_perf_report_tolerance_overrides_the_band(self, tmp_path, capsys):
        history = self._write_history(tmp_path / "h.jsonl", [2.0, 2.2, 1.9])
        assert main(["perf-report", "--history", str(history), "--check"]) == 0
        capsys.readouterr()
        code = main(
            [
                "perf-report",
                "--history",
                str(history),
                "--check",
                "--tolerance",
                "0.95",
            ]
        )
        assert code == 1
        assert "<< REGRESSION" in capsys.readouterr().out
