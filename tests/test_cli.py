"""CLI wiring (fast paths only; heavy subcommands smoke-tested in benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_args(self):
        args = build_parser().parse_args(["fig5", "taxi-lr", "--full", "--seeds", "2"])
        assert args.command == "fig5"
        assert args.config == "taxi-lr"
        assert args.full and args.seeds == 2

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "mnist"])

    def test_fig8_rates(self):
        args = build_parser().parse_args(["fig8", "--rates", "0.1", "0.4"])
        assert args.rates == [0.1, 0.4]


class TestExecution:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "taxi-lr" in out and "Counts x26" in out

    def test_fig8_tiny(self, capsys):
        assert main(["fig8", "--rates", "0.2", "--horizon", "40"]) == 0
        out = capsys.readouterr().out
        assert "block-conserve" in out


class TestDurabilityCommands:
    def test_wal_demo_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["wal-demo"])

    def test_clean_run_then_recover_reports_same_digest(self, tmp_path, capsys):
        assert main(["wal-demo", "--wal-dir", str(tmp_path), "--hours", "3"]) == 0
        ran = capsys.readouterr().out
        assert "3 committed" in ran
        assert main(["recover", "--wal-dir", str(tmp_path)]) == 0
        recovered = capsys.readouterr().out
        assert "3 hour(s) committed" in recovered
        digest = next(l for l in ran.splitlines() if l.startswith("state digest"))
        assert digest in recovered

    def test_crash_then_recover_matches_shorter_clean_run(self, tmp_path, capsys):
        # hour.after_commit dies right after hour 0 lands in the WAL, so
        # recovery must rebuild exactly the one-hour state.
        crash_dir, clean_dir = tmp_path / "crash", tmp_path / "clean"
        assert (
            main(
                [
                    "wal-demo",
                    "--wal-dir",
                    str(crash_dir),
                    "--hours",
                    "3",
                    "--crash-at",
                    "hour.after_commit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "crashed at hour.after_commit" in out
        assert "charge log holds 1 hour(s)" in out
        assert main(["recover", "--wal-dir", str(crash_dir)]) == 0
        recovered = capsys.readouterr().out
        assert main(["wal-demo", "--wal-dir", str(clean_dir), "--hours", "1"]) == 0
        clean = capsys.readouterr().out
        digest = next(l for l in clean.splitlines() if l.startswith("state digest"))
        assert digest in recovered

    def test_unknown_crash_point_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["wal-demo", "--wal-dir", str(tmp_path), "--crash-at", "no.such.point"]
        )
        assert code == 1
        assert "unknown crash point" in capsys.readouterr().err

    def test_recover_without_manifest_is_a_clean_error(self, tmp_path, capsys):
        assert main(["recover", "--wal-dir", str(tmp_path / "nothere")]) == 1
        assert "manifest.json" in capsys.readouterr().err
