"""CLI wiring (fast paths only; heavy subcommands smoke-tested in benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_args(self):
        args = build_parser().parse_args(["fig5", "taxi-lr", "--full", "--seeds", "2"])
        assert args.command == "fig5"
        assert args.config == "taxi-lr"
        assert args.full and args.seeds == 2

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "mnist"])

    def test_fig8_rates(self):
        args = build_parser().parse_args(["fig8", "--rates", "0.1", "0.4"])
        assert args.rates == [0.1, 0.4]


class TestExecution:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "taxi-lr" in out and "Counts x26" in out

    def test_fig8_tiny(self, capsys):
        assert main(["fig8", "--rates", "0.2", "--horizon", "40"]) == 0
        out = capsys.readouterr().out
        assert "block-conserve" in out
