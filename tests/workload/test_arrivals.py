"""Arrival processes and the requirement curve."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workload.arrivals import (
    GammaArrivals,
    PowerLawComplexity,
    requirement_at_epsilon,
)


class TestPowerLawBatch:
    def test_batch_matches_sequential_draws(self):
        """sample_batch must consume the same uniform stream as repeated
        sample() calls; values agree to the last ulp (numpy's vectorized
        pow and libm's may round differently)."""
        complexity = PowerLawComplexity()
        rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
        loop = [complexity.sample(rng_a) for _ in range(500)]
        batch = complexity.sample_batch(500, rng_b)
        assert batch.shape == (500,)
        np.testing.assert_allclose(batch, loop, rtol=1e-14)
        # The generators are left in the same state (same draws consumed).
        assert rng_a.random() == rng_b.random()

    def test_batch_respects_bounds(self):
        complexity = PowerLawComplexity(n_min=100.0, n_max=5000.0)
        batch = complexity.sample_batch(2000, np.random.default_rng(3))
        assert batch.min() >= 100.0
        assert batch.max() <= 5000.0

    def test_batch_edge_counts(self):
        complexity = PowerLawComplexity()
        assert complexity.sample_batch(0, np.random.default_rng(0)).shape == (0,)
        with pytest.raises(SimulationError):
            complexity.sample_batch(-1, np.random.default_rng(0))


class TestGammaArrivals:
    def test_mean_interarrival(self):
        arrivals = GammaArrivals(rate=0.5)
        rng = np.random.default_rng(0)
        draws = [arrivals.sample_interarrival(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.05)

    def test_arrival_times_sorted_and_bounded(self):
        times = GammaArrivals(0.3).arrival_times(100.0, np.random.default_rng(1))
        assert np.all(np.diff(times) > 0)
        assert times.max() < 100.0

    def test_rate_scales_count(self):
        rng = np.random.default_rng(2)
        low = GammaArrivals(0.1).arrival_times(2000.0, rng)
        rng = np.random.default_rng(2)
        high = GammaArrivals(0.7).arrival_times(2000.0, rng)
        assert len(high) > 4 * len(low)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            GammaArrivals(0.0)
        with pytest.raises(SimulationError):
            GammaArrivals(1.0, shape=0.0)


class TestPowerLawComplexity:
    def test_bounds_respected(self):
        sampler = PowerLawComplexity(n_min=1000, n_max=50_000, alpha=1.1)
        rng = np.random.default_rng(0)
        draws = [sampler.sample(rng) for _ in range(5000)]
        assert min(draws) >= 1000
        assert max(draws) <= 50_000

    def test_small_jobs_dominate(self):
        sampler = PowerLawComplexity(n_min=1000, n_max=1_000_000, alpha=1.1)
        rng = np.random.default_rng(0)
        draws = np.array([sampler.sample(rng) for _ in range(5000)])
        assert np.median(draws) < 5 * 1000  # heavy concentration near n_min

    def test_heavier_alpha_means_lighter_tail(self):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        light = PowerLawComplexity(1000, 1_000_000, alpha=2.5)
        heavy = PowerLawComplexity(1000, 1_000_000, alpha=0.8)
        l = np.mean([light.sample(rng1) for _ in range(3000)])
        h = np.mean([heavy.sample(rng2) for _ in range(3000)])
        assert l < h

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            PowerLawComplexity(n_min=0)
        with pytest.raises(SimulationError):
            PowerLawComplexity(n_min=100, n_max=50)


class TestRequirementCurve:
    def test_identity_at_eps_one(self):
        assert requirement_at_epsilon(1000, 1.0) == 1000

    def test_inverse_scaling(self):
        assert requirement_at_epsilon(1000, 0.5) == pytest.approx(2000)
        assert requirement_at_epsilon(1000, 0.25) == pytest.approx(4000)

    def test_custom_exponent(self):
        assert requirement_at_epsilon(1000, 0.25, exchange_exponent=0.5) == pytest.approx(2000)

    def test_zero_exponent_means_no_exchange(self):
        assert requirement_at_epsilon(1000, 0.01, exchange_exponent=0.0) == 1000

    def test_invalid(self):
        with pytest.raises(SimulationError):
            requirement_at_epsilon(0, 1.0)
        with pytest.raises(SimulationError):
            requirement_at_epsilon(1000, 0.0)
