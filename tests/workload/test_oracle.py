"""Count sources and requirement-oracle pipelines."""

import numpy as np
import pytest

from repro.core.validation.outcomes import Outcome
from repro.dp.budget import PrivacyBudget
from repro.errors import SimulationError
from repro.workload.oracle import CountStreamSource, OraclePipeline


class TestCountStreamSource:
    def test_scaled_counts(self):
        source = CountStreamSource(points_per_hour=16_000, scale=1000)
        batch = source.generate_interval(0.0, 1.0, np.random.default_rng(0))
        assert len(batch) == 16
        assert batch.X.shape == (16, 0)

    def test_timestamps_in_interval(self):
        source = CountStreamSource(8_000, scale=1000)
        batch = source.generate_interval(3.0, 2.0, np.random.default_rng(0))
        assert batch.timestamps.min() >= 3.0
        assert batch.timestamps.max() < 5.0

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            CountStreamSource(0)
        with pytest.raises(SimulationError):
            CountStreamSource(500, scale=1000)  # rate below one unit


class TestOraclePipeline:
    def _batch(self, units):
        source = CountStreamSource(units * 1000, scale=1000)
        return source.generate_interval(0.0, 1.0, np.random.default_rng(0))

    def test_accepts_when_requirement_met(self, rng):
        pipeline = OraclePipeline("p", n_at_eps1=8_000, scale=1000)
        run = pipeline.run(self._batch(8), PrivacyBudget(1.0, 0.0), rng)
        assert run.outcome is Outcome.ACCEPT

    def test_retries_when_short(self, rng):
        pipeline = OraclePipeline("p", n_at_eps1=8_000, scale=1000)
        run = pipeline.run(self._batch(7), PrivacyBudget(1.0, 0.0), rng)
        assert run.outcome is Outcome.RETRY

    def test_smaller_epsilon_needs_more_data(self, rng):
        pipeline = OraclePipeline("p", n_at_eps1=8_000, scale=1000)
        batch = self._batch(8)
        assert pipeline.run(batch, PrivacyBudget(1.0, 0.0), rng).outcome is Outcome.ACCEPT
        assert pipeline.run(batch, PrivacyBudget(0.5, 0.0), rng).outcome is Outcome.RETRY

    def test_details_expose_requirement(self, rng):
        pipeline = OraclePipeline("p", n_at_eps1=4_000, scale=1000)
        run = pipeline.run(self._batch(2), PrivacyBudget(0.5, 0.0), rng)
        assert run.validation.details["needed"] == pytest.approx(8_000)
        assert run.validation.details["real_points"] == 2_000
