"""The Fig. 8 workload simulator."""

import pytest

from repro.errors import SimulationError
from repro.workload.simulator import (
    STRATEGIES,
    WorkloadConfig,
    WorkloadReport,
    WorkloadSimulator,
    sweep_arrival_rates,
)


def small_config(strategy, rate=0.2, horizon=60.0):
    return WorkloadConfig(
        strategy=strategy,
        arrival_rate=rate,
        horizon_hours=horizon,
        points_per_hour=16_000,
    )


class TestConfig:
    def test_unknown_strategy(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(strategy="magic")

    def test_bad_horizon(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(horizon_hours=0.0)


class TestReports:
    def test_avg_release_time_includes_censored(self):
        report = WorkloadReport(
            strategy="query", arrival_rate=0.1, submitted=2, released=1,
            release_times=[4.0], censored_times=[20.0],
        )
        assert report.avg_release_time == pytest.approx(12.0)
        assert report.avg_release_time_released_only == pytest.approx(4.0)
        assert report.release_fraction == 0.5

    def test_empty_report(self):
        report = WorkloadReport("query", 0.1, 0, 0, [], [])
        assert report.avg_release_time == 0.0
        assert report.release_fraction == 1.0


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestStrategiesRun:
    def test_runs_and_accounts(self, strategy):
        report = WorkloadSimulator(small_config(strategy), seed=1).run()
        assert report.submitted > 0
        assert report.released + len(report.censored_times) == report.submitted
        assert all(t >= 0 for t in report.release_times)

    def test_deterministic_under_seed(self, strategy):
        a = WorkloadSimulator(small_config(strategy), seed=5).run()
        b = WorkloadSimulator(small_config(strategy), seed=5).run()
        assert a.release_times == b.release_times
        assert a.submitted == b.submitted


class TestShape:
    """Coarse Fig. 8 shape assertions kept cheap enough for CI."""

    def test_block_beats_streaming_under_load(self):
        block = WorkloadSimulator(
            small_config("block-conserve", rate=0.5, horizon=150), seed=2
        ).run()
        streaming = WorkloadSimulator(
            small_config("streaming", rate=0.5, horizon=150), seed=2
        ).run()
        assert block.avg_release_time < streaming.avg_release_time

    def test_load_increases_release_time(self):
        light = WorkloadSimulator(
            small_config("block-conserve", rate=0.1, horizon=120), seed=3
        ).run()
        # Well past the ~0.8/hour sustainable capacity: queueing must show.
        heavy = WorkloadSimulator(
            small_config("block-conserve", rate=2.0, horizon=120), seed=3
        ).run()
        # Under load, either latency grows or fewer pipelines release.
        assert (
            heavy.avg_release_time >= light.avg_release_time
            or heavy.release_fraction < light.release_fraction
        )

    def test_sweep_returns_per_rate_reports(self):
        reports = sweep_arrival_rates(
            [0.1, 0.2], small_config("streaming"), seed=0
        )
        assert set(reports) == {0.1, 0.2}
        assert all(r.strategy == "streaming" for r in reports.values())
