"""Prior-work schedulers: query composition and streaming composition."""

import pytest

from repro.errors import SimulationError
from repro.workload.baselines import (
    PendingPipeline,
    QueryCompositionScheduler,
    StreamingCompositionScheduler,
)


def pipeline(n, name="p", submit=0.0):
    return PendingPipeline(name=name, n_at_eps1=n, submit_hour=submit)


class TestQueryComposition:
    def test_small_pipeline_releases_fast(self):
        sched = QueryCompositionScheduler(1.0, block_points=16_000)
        p = pipeline(4_000)
        sched.submit(p)
        sched.step(0.0)
        assert p.released  # one block at full allocation: (4000/16000)^2 < 1

    def test_quadratic_block_penalty(self):
        """A pipeline needing w0 blocks under block composition needs ~w0^2
        here; verify via the release horizon."""
        sched = QueryCompositionScheduler(1.0, block_points=16_000)
        p = pipeline(64_000)  # 4 blocks at eps=1 under block composition
        sched.submit(p)
        hours = 0
        while not p.released and hours < 100:
            sched.step(float(hours))
            hours += 1
        assert p.released
        assert hours >= 16  # needed (64/16)^2 = 16 blocks

    def test_contention_shrinks_allocations(self):
        sched = QueryCompositionScheduler(1.0, block_points=16_000)
        pipelines = [pipeline(30_000, name=f"p{i}") for i in range(10)]
        for p in pipelines:
            sched.submit(p)
        sched.step(0.0)
        # Ten waiting pipelines share one block: 0.1 each.
        assert all(
            a == pytest.approx(0.1) for p in pipelines for a in p.allocations.values()
        )

    def test_best_prefix_used(self):
        """A pipeline holding one fat allocation and many thin ones should
        release off the fat one when that suffices."""
        sched = QueryCompositionScheduler(1.0, block_points=16_000)
        lone = pipeline(8_000)
        sched.submit(lone)
        sched.step(0.0)  # sole pipeline: allocation 1.0 -> releases
        assert lone.released

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            QueryCompositionScheduler(0.0, 100.0)


class TestStreamingComposition:
    def test_exclusive_consumption(self):
        sched = StreamingCompositionScheduler(1.0, block_points=16_000, single_pass_penalty=1.0)
        a, b = pipeline(8_000, "a"), pipeline(8_000, "b")
        sched.submit(a)
        sched.submit(b)
        sched.step(0.0)
        # The hour's 16K points were split: 8K each -> both exactly done.
        assert a.released and b.released
        assert a.points_consumed == pytest.approx(8_000)

    def test_single_pass_penalty_delays(self):
        fast = StreamingCompositionScheduler(1.0, 16_000, single_pass_penalty=1.0)
        slow = StreamingCompositionScheduler(1.0, 16_000, single_pass_penalty=10.0)
        p1, p2 = pipeline(8_000), pipeline(8_000)
        fast.submit(p1)
        slow.submit(p2)
        fast.step(0.0)
        slow.step(0.0)
        assert p1.released and not p2.released

    def test_queue_starvation_under_load(self):
        sched = StreamingCompositionScheduler(1.0, 16_000, single_pass_penalty=1.0)
        pipelines = [pipeline(32_000, name=f"p{i}") for i in range(8)]
        for p in pipelines:
            sched.submit(p)
        for hour in range(8):
            sched.step(float(hour))
        # 8 pipelines x 32K = 256K needed; 8 hours x 16K = 128K delivered.
        assert sum(p.released for p in pipelines) == 0

    def test_no_waiting_pipelines_is_noop(self):
        sched = StreamingCompositionScheduler(1.0, 16_000)
        stepped = sched.step(0.0)
        assert stepped == []

    def test_invalid_penalty(self):
        with pytest.raises(SimulationError):
            StreamingCompositionScheduler(1.0, 100.0, single_pass_penalty=0.5)
