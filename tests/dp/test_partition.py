"""Parallel composition over disjoint partitions."""

import numpy as np
import pytest

from repro.dp.budget import PrivacyBudget
from repro.dp.partition import PartitionedQuery, parallel_composition, partition_indices
from repro.errors import DataError


class TestParallelComposition:
    def test_max_not_sum(self):
        budgets = [PrivacyBudget(0.3, 1e-7), PrivacyBudget(0.5, 0.0), PrivacyBudget(0.2, 2e-7)]
        combined = parallel_composition(budgets)
        assert combined.epsilon == 0.5
        assert combined.delta == 2e-7

    def test_empty_is_zero(self):
        assert parallel_composition([]).is_zero


class TestPartitionIndices:
    def test_partitions_cover_everything(self, rng):
        keys = rng.integers(0, 5, size=100)
        parts = partition_indices(keys, 5)
        recovered = np.sort(np.concatenate(parts))
        assert np.array_equal(recovered, np.arange(100))

    def test_partitions_are_disjoint(self, rng):
        keys = rng.integers(0, 4, size=60)
        parts = partition_indices(keys, 4)
        seen = set()
        for idx in parts:
            as_set = set(idx.tolist())
            assert not (seen & as_set)
            seen |= as_set

    def test_keys_route_correctly(self):
        keys = np.array([2, 0, 1, 2])
        parts = partition_indices(keys, 3)
        assert np.array_equal(parts[0], [1])
        assert np.array_equal(parts[1], [2])
        assert np.array_equal(parts[2], [0, 3])

    def test_empty_partition_allowed(self):
        parts = partition_indices(np.array([0, 0]), 3)
        assert parts[1].size == 0
        assert parts[2].size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(DataError):
            partition_indices(np.array([0, 7]), 3)


class TestPartitionedQuery:
    def test_runs_per_partition(self, rng):
        query = PartitionedQuery(
            fn=lambda rows, _rng: float(rows.sum()), budget=PrivacyBudget(0.1)
        )
        rows = np.arange(6, dtype=float)
        keys = np.array([0, 0, 1, 1, 1, 0])
        out = query.run(rows, keys, 2, rng)
        assert out[0] == 0 + 1 + 5
        assert out[1] == 2 + 3 + 4

    def test_budget_is_per_partition(self):
        query = PartitionedQuery(fn=lambda r, g: None, budget=PrivacyBudget(0.7))
        assert query.budget.epsilon == 0.7

    def test_shape_mismatch(self, rng):
        query = PartitionedQuery(fn=lambda r, g: None, budget=PrivacyBudget(0.1))
        with pytest.raises(DataError):
            query.run(np.ones(3), np.array([0, 1]), 2, rng)
