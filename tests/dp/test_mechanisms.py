"""Laplace/Gaussian mechanisms: calibration, tails, randomization."""

import math

import numpy as np
import pytest

from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    gaussian_noise,
    gaussian_sigma,
    laplace_noise,
    laplace_scale,
    make_rng,
)
from repro.errors import CalibrationError, InvalidBudgetError


class TestCalibration:
    def test_laplace_scale_formula(self):
        assert laplace_scale(2.0, 0.5) == 4.0

    def test_gaussian_sigma_formula(self):
        sigma = gaussian_sigma(1.0, 1.0, 1e-5)
        assert math.isclose(sigma, math.sqrt(2.0 * math.log(1.25e5)), rel_tol=1e-12)

    def test_gaussian_sigma_shrinks_with_epsilon(self):
        assert gaussian_sigma(1.0, 2.0, 1e-6) < gaussian_sigma(1.0, 1.0, 1e-6)

    def test_gaussian_sigma_grows_with_sensitivity(self):
        assert gaussian_sigma(2.0, 1.0, 1e-6) == 2.0 * gaussian_sigma(1.0, 1.0, 1e-6)

    @pytest.mark.parametrize("eps", [0.0, -1.0])
    def test_nonpositive_epsilon_rejected(self, eps):
        with pytest.raises(CalibrationError):
            laplace_scale(1.0, eps)
        with pytest.raises(CalibrationError):
            gaussian_sigma(1.0, eps, 1e-6)

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_gaussian_needs_open_delta(self, delta):
        with pytest.raises(CalibrationError):
            gaussian_sigma(1.0, 1.0, delta)

    def test_negative_sensitivity_rejected(self):
        with pytest.raises(CalibrationError):
            laplace_scale(-1.0, 1.0)


class TestNoiseDraws:
    def test_zero_scale_is_exact(self, rng):
        assert laplace_noise(rng, 0.0) == 0.0
        assert np.all(gaussian_noise(rng, 0.0, size=5) == 0.0)

    def test_laplace_empirical_variance(self):
        rng = make_rng(0)
        draws = laplace_noise(rng, 2.0, size=200_000)
        # Var(Laplace(b)) = 2 b^2 = 8.
        assert abs(np.var(draws) - 8.0) < 0.2

    def test_gaussian_empirical_variance(self):
        rng = make_rng(0)
        draws = gaussian_noise(rng, 3.0, size=200_000)
        assert abs(np.var(draws) - 9.0) < 0.2

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(CalibrationError):
            laplace_noise(rng, -1.0)
        with pytest.raises(CalibrationError):
            gaussian_noise(rng, -1.0)

    def test_deterministic_under_seed(self):
        a = laplace_noise(make_rng(42), 1.0, size=10)
        b = laplace_noise(make_rng(42), 1.0, size=10)
        assert np.array_equal(a, b)


class TestMechanismObjects:
    def test_laplace_budget(self):
        mech = LaplaceMechanism(sensitivity=1.0, epsilon=0.5)
        assert mech.budget == PrivacyBudget(0.5, 0.0)
        assert mech.scale == 2.0

    def test_gaussian_budget(self):
        mech = GaussianMechanism(sensitivity=1.0, epsilon=0.5, delta=1e-6)
        assert mech.budget == PrivacyBudget(0.5, 1e-6)

    def test_randomize_scalar_returns_float(self, rng):
        out = LaplaceMechanism(1.0, 1.0).randomize(5.0, rng)
        assert isinstance(out, float)

    def test_randomize_vector_shape(self, rng):
        out = GaussianMechanism(1.0, 1.0, 1e-6).randomize(np.zeros(7), rng)
        assert out.shape == (7,)

    def test_laplace_tail_bound_probability(self):
        """P(|noise| > tail_bound(eta)) should be ~eta."""
        mech = LaplaceMechanism(1.0, 1.0)
        bound = mech.tail_bound(0.05)
        rng = make_rng(3)
        draws = laplace_noise(rng, mech.scale, size=100_000)
        rate = np.mean(np.abs(draws) > bound)
        assert rate <= 0.06  # valid bound
        assert rate >= 0.03  # not absurdly loose

    def test_gaussian_tail_bound_probability(self):
        mech = GaussianMechanism(1.0, 1.0, 1e-6)
        bound = mech.tail_bound(0.05)
        rng = make_rng(3)
        draws = gaussian_noise(rng, mech.sigma, size=100_000)
        assert np.mean(np.abs(draws) > bound) <= 0.05

    def test_tail_bound_invalid_eta(self):
        with pytest.raises(InvalidBudgetError):
            LaplaceMechanism(1.0, 1.0).tail_bound(0.0)

    def test_tail_bound_monotone_in_eta(self):
        mech = LaplaceMechanism(1.0, 1.0)
        assert mech.tail_bound(0.01) > mech.tail_bound(0.1)
