"""DP point queries: correctness in the low-noise limit, clipping, errors."""

import numpy as np
import pytest

from repro.dp.mechanisms import make_rng
from repro.dp.queries import (
    dp_count,
    dp_group_by_mean,
    dp_group_by_sum,
    dp_histogram,
    dp_mean,
    dp_quantile,
    dp_sum,
    dp_variance,
)
from repro.errors import CalibrationError, DataError

BIG_EPS = 1e7  # noise becomes negligible


class TestCount:
    def test_low_noise_limit(self, rng):
        assert dp_count(100, BIG_EPS, rng) == pytest.approx(100, abs=0.01)

    def test_noise_scale(self):
        rng = make_rng(0)
        draws = np.array([dp_count(0, 2.0, rng) for _ in range(50_000)])
        # Laplace(1/2): variance 2 * (1/2)^2 = 0.5
        assert abs(np.var(draws) - 0.5) < 0.05

    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(CalibrationError):
            dp_count(10, 0.0, rng)


class TestSumMeanVariance:
    def test_sum_low_noise(self, rng):
        values = np.array([1.0, 2.0, 3.0])
        assert dp_sum(values, 0.0, 5.0, BIG_EPS, rng) == pytest.approx(6.0, abs=0.01)

    def test_sum_clips_before_adding(self, rng):
        values = np.array([10.0, -10.0])
        out = dp_sum(values, 0.0, 1.0, BIG_EPS, rng)
        assert out == pytest.approx(1.0, abs=0.01)  # 1 + 0

    def test_mean_low_noise(self, rng):
        values = np.linspace(0, 1, 101)
        assert dp_mean(values, 0.0, 1.0, BIG_EPS, rng) == pytest.approx(0.5, abs=0.01)

    def test_mean_stays_in_range(self, rng):
        values = np.array([1.0] * 3)
        for _ in range(50):
            out = dp_mean(values, 0.0, 1.0, 0.5, rng)
            assert 0.0 <= out <= 1.0

    def test_variance_low_noise(self, rng):
        values = np.array([0.0, 1.0] * 500)
        assert dp_variance(values, 0.0, 1.0, BIG_EPS, rng) == pytest.approx(0.25, abs=0.01)

    def test_variance_nonnegative(self, rng):
        values = np.array([0.5] * 10)
        for _ in range(50):
            assert dp_variance(values, 0.0, 1.0, 1.0, rng) >= 0.0

    def test_empty_range_raises(self, rng):
        with pytest.raises(DataError):
            dp_sum(np.array([1.0]), 1.0, 0.0, 1.0, rng)


class TestHistogramAndGroupBy:
    def test_histogram_low_noise(self, rng):
        keys = np.array([0, 0, 1, 2, 2, 2])
        hist = dp_histogram(keys, 3, BIG_EPS, rng)
        assert np.allclose(hist, [2, 1, 3], atol=0.01)

    def test_histogram_key_bounds(self, rng):
        with pytest.raises(DataError):
            dp_histogram(np.array([0, 5]), 3, 1.0, rng)

    def test_group_by_sum_low_noise(self, rng):
        keys = np.array([0, 1, 1])
        values = np.array([1.0, 2.0, 3.0])
        sums = dp_group_by_sum(keys, values, 2, 10.0, BIG_EPS, rng)
        assert np.allclose(sums, [1.0, 5.0], atol=0.01)

    def test_group_by_mean_matches_listing1(self, rng):
        keys = np.array([0] * 50 + [1] * 50)
        values = np.concatenate([np.full(50, 2.0), np.full(50, 8.0)])
        means = dp_group_by_mean(keys, values, 2, BIG_EPS, 10.0, rng)
        assert np.allclose(means, [2.0, 8.0], atol=0.05)

    def test_group_by_mean_empty_key_is_bounded(self, rng):
        keys = np.zeros(10, dtype=int)
        values = np.ones(10)
        means = dp_group_by_mean(keys, values, 3, 1.0, 5.0, rng)
        assert means.shape == (3,)
        assert np.all((0.0 <= means) & (means <= 5.0))

    def test_group_by_shape_mismatch(self, rng):
        with pytest.raises(DataError):
            dp_group_by_sum(np.array([0, 1]), np.array([1.0]), 2, 1.0, 1.0, rng)


class TestQuantile:
    def test_median_low_noise(self, rng):
        values = np.linspace(0, 100, 1001)
        est = dp_quantile(values, 0.5, 0.0, 100.0, 50.0, rng)
        assert abs(est - 50.0) < 3.0

    def test_output_within_bounds(self, rng):
        values = np.array([5.0, 6.0, 7.0])
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            out = dp_quantile(values, q, 0.0, 10.0, 0.5, rng)
            assert 0.0 <= out <= 10.0

    def test_invalid_quantile(self, rng):
        with pytest.raises(DataError):
            dp_quantile(np.array([1.0]), 1.5, 0.0, 1.0, 1.0, rng)

    def test_empirical_accuracy_median(self):
        """With moderate eps and data, the DP median lands near the truth."""
        rng = make_rng(5)
        values = rng.normal(50.0, 10.0, size=5000)
        estimates = [
            dp_quantile(values, 0.5, 0.0, 100.0, 1.0, rng) for _ in range(20)
        ]
        assert abs(np.median(estimates) - 50.0) < 2.5
