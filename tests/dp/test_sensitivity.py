"""Sensitivity helpers and clipping operators."""

import numpy as np
import pytest

from repro.dp.sensitivity import (
    clip_rows_l2,
    clip_values,
    count_sensitivity,
    l2_clip_factor,
    sum_sensitivity,
)
from repro.errors import DataError


class TestScalarSensitivities:
    def test_count(self):
        assert count_sensitivity() == 1.0

    @pytest.mark.parametrize(
        "lower,upper,expected",
        [(0.0, 1.0, 1.0), (-2.0, 1.0, 2.0), (-1.0, 3.0, 3.0), (0.0, 0.0, 0.0)],
    )
    def test_sum(self, lower, upper, expected):
        assert sum_sensitivity(lower, upper) == expected

    def test_empty_range_raises(self):
        with pytest.raises(DataError):
            sum_sensitivity(1.0, 0.0)


class TestValueClipping:
    def test_clip_values(self):
        out = clip_values(np.array([-5.0, 0.5, 5.0]), 0.0, 1.0)
        assert np.array_equal(out, [0.0, 0.5, 1.0])

    def test_clip_preserves_interior(self):
        values = np.linspace(0.2, 0.8, 10)
        assert np.array_equal(clip_values(values, 0.0, 1.0), values)


class TestL2Clipping:
    def test_factors_at_most_one(self, rng):
        rows = rng.normal(size=(50, 8))
        factors = l2_clip_factor(rows, 1.0)
        assert np.all(factors <= 1.0)
        assert np.all(factors > 0.0)

    def test_small_rows_untouched(self):
        rows = np.array([[0.1, 0.0], [0.0, 0.2]])
        clipped = clip_rows_l2(rows, 5.0)
        assert np.array_equal(clipped, rows)

    def test_clipped_norms_bounded(self, rng):
        rows = rng.normal(size=(100, 5)) * 10
        clipped = clip_rows_l2(rows, 1.5)
        norms = np.linalg.norm(clipped, axis=1)
        assert np.all(norms <= 1.5 + 1e-9)

    def test_direction_preserved(self):
        row = np.array([[3.0, 4.0]])  # norm 5
        clipped = clip_rows_l2(row, 1.0)
        assert np.allclose(clipped, [[0.6, 0.8]])

    def test_zero_rows_stay_zero(self):
        rows = np.zeros((3, 4))
        assert np.array_equal(clip_rows_l2(rows, 1.0), rows)

    def test_higher_rank_rows(self, rng):
        rows = rng.normal(size=(10, 3, 4)) * 100
        clipped = clip_rows_l2(rows, 2.0)
        norms = np.linalg.norm(clipped.reshape(10, -1), axis=1)
        assert np.all(norms <= 2.0 + 1e-9)

    def test_bad_norm_raises(self):
        with pytest.raises(DataError):
            clip_rows_l2(np.ones((2, 2)), 0.0)
