"""RDP accountant: known values, monotonicity, calibration round trips."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.rdp import (
    DEFAULT_ORDERS,
    calibrate_sigma,
    clear_rdp_cache,
    compute_epsilon,
    compute_rdp,
    gaussian_rdp,
    rdp_to_epsilon,
    sampled_gaussian_rdp,
    sampled_gaussian_rdp_orders,
)
from repro.errors import CalibrationError


class TestGaussianRDP:
    def test_closed_form(self):
        assert gaussian_rdp(2.0, 8) == 8 / (2 * 4.0)

    def test_q_one_matches_unsampled(self):
        for order in (2, 5, 32):
            assert math.isclose(
                sampled_gaussian_rdp(1.0, 1.3, order), gaussian_rdp(1.3, order)
            )

    def test_q_zero_is_free(self):
        assert sampled_gaussian_rdp(0.0, 1.0, 4) == 0.0

    def test_subsampling_amplifies(self):
        """RDP at q < 1 must be far below the unsampled value."""
        full = gaussian_rdp(1.0, 8)
        sampled = sampled_gaussian_rdp(0.01, 1.0, 8)
        assert sampled < full / 10

    def test_monotone_in_q(self):
        values = [sampled_gaussian_rdp(q, 1.0, 8) for q in (0.001, 0.01, 0.1, 0.5, 1.0)]
        assert values == sorted(values)

    def test_decreasing_in_sigma(self):
        values = [sampled_gaussian_rdp(0.01, s, 8) for s in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp(1.5, 1.0, 4)
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp(0.5, 0.0, 4)
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp(0.5, 1.0, 1)


class TestVectorizedParity:
    """The 2-D expansion is pinned to the scalar reference: <= 1e-10
    relative error with a 1e-14 absolute floor (values at float-noise
    scale, where the log-sum cancels against the leading term)."""

    GRID_Q = (0.0, 1e-5, 1e-4, 0.001, 0.01, 0.1, 0.3, 0.5, 0.9, 1.0)
    GRID_SIGMA = (0.35, 0.5, 1.1, 5.0, 80.0, 500.0)

    @pytest.mark.parametrize("q", GRID_Q)
    @pytest.mark.parametrize("sigma", GRID_SIGMA)
    def test_matches_scalar_over_grid(self, q, sigma):
        vec = sampled_gaussian_rdp_orders(q, sigma, DEFAULT_ORDERS)
        ref = np.array([sampled_gaussian_rdp(q, sigma, a) for a in DEFAULT_ORDERS])
        assert np.all(np.abs(vec - ref) <= np.maximum(1e-10 * np.abs(ref), 1e-14))

    def test_q_zero_is_free_for_all_orders(self):
        assert np.all(sampled_gaussian_rdp_orders(0.0, 1.3) == 0.0)

    def test_q_one_matches_unsampled_closed_form(self):
        vec = sampled_gaussian_rdp_orders(1.0, 1.3, DEFAULT_ORDERS)
        ref = np.array([gaussian_rdp(1.3, a) for a in DEFAULT_ORDERS])
        assert np.allclose(vec, ref, rtol=1e-12, atol=0.0)

    def test_invalid_inputs_match_scalar_errors(self):
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp_orders(1.5, 1.0)
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp_orders(0.5, 0.0)
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp_orders(0.5, 1.0, orders=(1, 2))
        with pytest.raises(CalibrationError):
            sampled_gaussian_rdp_orders(0.5, 1.0, orders=(2, 2.5))

    def test_compute_rdp_memoized(self):
        clear_rdp_cache()
        a = compute_rdp(0.01, 1.1, 100)
        b = compute_rdp(0.01, 1.1, 250)
        assert np.allclose(2.5 * a, b)
        # The memoized per-step vector is shared and must be immutable.
        from repro.dp.rdp import _PER_STEP_CACHE

        (per_step,) = [
            v for k, v in _PER_STEP_CACHE.items() if k[:2] == (0.01, 1.1)
        ]
        with pytest.raises(ValueError):
            per_step[0] = 1.0
        # Results handed to callers stay writable copies.
        a[0] = -1.0
        assert compute_rdp(0.01, 1.1, 100)[0] != -1.0

    def test_calibrate_unchanged_by_cache(self):
        clear_rdp_cache()
        cold = calibrate_sigma(0.02, 300, 0.8, 1e-6)
        warm = calibrate_sigma(0.02, 300, 0.8, 1e-6)
        assert cold == warm


class TestComposition:
    def test_rdp_is_linear_in_steps(self):
        one = compute_rdp(0.01, 1.0, 1)
        many = compute_rdp(0.01, 1.0, 250)
        assert np.allclose(many, 250 * one)

    def test_zero_steps(self):
        assert np.all(compute_rdp(0.01, 1.0, 0) == 0.0)


class TestConversion:
    def test_improved_beats_classic(self):
        rdp = compute_rdp(0.01, 1.0, 1000)
        eps_improved, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, 1e-6, improved=True)
        eps_classic, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, 1e-6, improved=False)
        assert eps_improved <= eps_classic

    def test_epsilon_monotone_in_steps(self):
        values = [compute_epsilon(0.01, 1.0, t, 1e-6) for t in (10, 100, 1000, 5000)]
        assert values == sorted(values)

    def test_epsilon_decreasing_in_sigma(self):
        values = [compute_epsilon(0.01, s, 1000, 1e-6) for s in (0.6, 1.0, 2.0, 5.0)]
        assert values == sorted(values, reverse=True)

    def test_epsilon_decreasing_in_delta(self):
        strict = compute_epsilon(0.01, 1.0, 1000, 1e-9)
        loose = compute_epsilon(0.01, 1.0, 1000, 1e-3)
        assert loose < strict

    def test_single_full_batch_step_ballpark(self):
        """One full-batch Gaussian step at sigma=1, delta=1e-6: epsilon in a
        sane band (classic Gaussian mechanism would give ~4.8-5.5)."""
        eps = compute_epsilon(1.0, 1.0, 1, 1e-6)
        assert 3.0 < eps < 6.0

    def test_mismatched_lengths(self):
        with pytest.raises(CalibrationError):
            rdp_to_epsilon([1.0], [2, 3], 1e-6)


class TestCalibration:
    def test_round_trip(self):
        sigma = calibrate_sigma(0.02, 500, 1.0, 1e-6)
        achieved = compute_epsilon(0.02, sigma, 500, 1e-6)
        assert achieved <= 1.0 + 1e-6
        # And not over-noised: 10% smaller sigma should violate the target.
        assert compute_epsilon(0.02, sigma * 0.9, 500, 1e-6) > 1.0

    def test_impossible_target_raises(self):
        with pytest.raises(CalibrationError):
            calibrate_sigma(0.5, 100_000, 0.001, 1e-9, sigma_max=50.0)

    def test_easy_target_returns_floor(self):
        sigma = calibrate_sigma(0.001, 1, 50.0, 1e-3)
        assert sigma == pytest.approx(0.3)

    @given(
        st.floats(min_value=0.3, max_value=3.0),
        st.integers(min_value=10, max_value=2000),
    )
    @settings(max_examples=20, deadline=None)
    def test_calibrated_sigma_always_meets_target(self, eps, steps):
        sigma = calibrate_sigma(0.01, steps, eps, 1e-6)
        assert compute_epsilon(0.01, sigma, steps, 1e-6) <= eps * (1 + 1e-6)
