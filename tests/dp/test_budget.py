"""PrivacyBudget arithmetic and ordering."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dp.budget import PrivacyBudget, ZERO_BUDGET, sum_budgets
from repro.errors import InvalidBudgetError

EPS = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
DELTA = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
BUDGETS = st.builds(PrivacyBudget, EPS, DELTA)


class TestConstruction:
    def test_basic(self):
        b = PrivacyBudget(1.0, 1e-6)
        assert b.epsilon == 1.0
        assert b.delta == 1e-6

    def test_delta_defaults_to_zero(self):
        assert PrivacyBudget(0.5).delta == 0.0

    def test_zero_budget_is_zero(self):
        assert ZERO_BUDGET.is_zero
        assert not PrivacyBudget(0.1).is_zero

    def test_pure_dp(self):
        assert PrivacyBudget(1.0).is_pure
        assert not PrivacyBudget(1.0, 1e-9).is_pure

    @pytest.mark.parametrize("eps", [-1.0, -1e-12, float("nan"), float("inf")])
    def test_invalid_epsilon_rejected(self, eps):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(eps, 0.0)

    @pytest.mark.parametrize("delta", [-0.1, 1.1, float("nan")])
    def test_invalid_delta_rejected(self, delta):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0, delta)

    def test_frozen(self):
        with pytest.raises(Exception):
            PrivacyBudget(1.0).epsilon = 2.0


class TestArithmetic:
    def test_addition_composes(self):
        total = PrivacyBudget(0.3, 1e-7) + PrivacyBudget(0.7, 2e-7)
        assert math.isclose(total.epsilon, 1.0)
        assert math.isclose(total.delta, 3e-7)

    def test_delta_saturates_at_one(self):
        total = PrivacyBudget(1.0, 0.8) + PrivacyBudget(1.0, 0.8)
        assert total.delta == 1.0

    def test_subtraction(self):
        left = PrivacyBudget(1.0, 1e-6) - PrivacyBudget(0.25, 5e-7)
        assert math.isclose(left.epsilon, 0.75)
        assert math.isclose(left.delta, 5e-7)

    def test_subtraction_underflow_raises(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(0.1) - PrivacyBudget(0.2)

    def test_subtract_to_exact_zero(self):
        result = PrivacyBudget(0.5, 1e-6) - PrivacyBudget(0.5, 1e-6)
        assert result.is_zero

    def test_division_splits_evenly(self):
        share = PrivacyBudget(1.0, 3e-6) / 3
        assert math.isclose(share.epsilon, 1.0 / 3.0)
        assert math.isclose(share.delta, 1e-6)

    def test_division_by_nonpositive_raises(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0) / 0

    def test_scalar_multiplication(self):
        doubled = PrivacyBudget(0.5, 1e-7) * 2
        assert math.isclose(doubled.epsilon, 1.0)
        assert math.isclose(doubled.delta, 2e-7)

    def test_negative_scale_raises(self):
        with pytest.raises(InvalidBudgetError):
            PrivacyBudget(1.0) * -1

    def test_split_parts_recompose(self):
        b = PrivacyBudget(0.9, 9e-7)
        parts = list(b.split(9))
        assert len(parts) == 9
        assert sum_budgets(parts).approx_eq(b)

    def test_sum_budgets_empty_is_zero(self):
        assert sum_budgets([]).is_zero


class TestOrdering:
    def test_fits_within(self):
        assert PrivacyBudget(0.5, 1e-7).fits_within(PrivacyBudget(1.0, 1e-6))
        assert not PrivacyBudget(1.5, 0.0).fits_within(PrivacyBudget(1.0, 1e-6))
        assert not PrivacyBudget(0.5, 1e-5).fits_within(PrivacyBudget(1.0, 1e-6))

    def test_le_is_componentwise(self):
        assert PrivacyBudget(1.0, 1e-6) <= PrivacyBudget(1.0, 1e-6)
        assert PrivacyBudget(0.9, 0.0) < PrivacyBudget(1.0, 0.0)

    def test_repeated_halving_still_fits(self):
        # Floating-point dust must not make an exact split unusable.
        whole = PrivacyBudget(1.0, 1e-6)
        pieces = [whole / 7 for _ in range(7)]
        assert sum_budgets(pieces).fits_within(whole)


class TestProperties:
    @given(BUDGETS, BUDGETS)
    def test_addition_commutes(self, a, b):
        assert (a + b).approx_eq(b + a)

    @given(BUDGETS, BUDGETS)
    def test_sum_dominates_parts(self, a, b):
        assert a.fits_within(a + b)
        assert b.fits_within(a + b)

    @given(BUDGETS)
    def test_add_zero_is_identity(self, a):
        assert (a + ZERO_BUDGET).approx_eq(a)

    @given(BUDGETS)
    def test_sub_self_is_zero(self, a):
        assert (a - a).is_zero

    @given(BUDGETS, st.integers(min_value=1, max_value=20))
    def test_split_recomposes(self, a, parts):
        total = sum_budgets(a.split(parts))
        assert total.approx_eq(a) or abs(total.epsilon - a.epsilon) < 1e-9
