"""Composition theorems: values, orderings, and the Rogers filter."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.budget import PrivacyBudget
from repro.dp.composition import (
    advanced_composition,
    basic_composition,
    optimal_composition_homogeneous,
    rogers_filter_admits,
    rogers_filter_epsilon,
    strong_composition_heterogeneous,
)
from repro.errors import InvalidBudgetError


class TestBasic:
    def test_sums(self):
        total = basic_composition([PrivacyBudget(0.1, 1e-7)] * 5)
        assert math.isclose(total.epsilon, 0.5)
        assert math.isclose(total.delta, 5e-7)

    def test_empty(self):
        assert basic_composition([]).is_zero


class TestAdvanced:
    def test_zero_queries(self):
        assert advanced_composition(0.1, 0.0, 0, 1e-6).is_zero

    def test_beats_basic_for_many_small_queries(self):
        eps, k = 0.01, 10_000
        strong = advanced_composition(eps, 0.0, k, 1e-6)
        assert strong.epsilon < eps * k

    def test_worse_than_basic_for_one_query(self):
        # The sqrt term dominates at k = 1; strong composition is for many queries.
        strong = advanced_composition(0.1, 0.0, 1, 1e-6)
        assert strong.epsilon > 0.1

    def test_delta_accumulates(self):
        out = advanced_composition(0.1, 1e-8, 100, 1e-6)
        assert math.isclose(out.delta, 100 * 1e-8 + 1e-6)

    def test_invalid_slack(self):
        with pytest.raises(InvalidBudgetError):
            advanced_composition(0.1, 0.0, 10, 0.0)

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30)
    def test_monotone_in_k(self, k):
        a = advanced_composition(0.05, 0.0, k, 1e-6)
        b = advanced_composition(0.05, 0.0, k + 1, 1e-6)
        assert b.epsilon >= a.epsilon


class TestHeterogeneous:
    def test_matches_homogeneous_case(self):
        eps, k = 0.05, 50
        hetero = strong_composition_heterogeneous([PrivacyBudget(eps)] * k, 1e-6)
        homo = advanced_composition(eps, 0.0, k, 1e-6)
        # Same formula family; the heterogeneous linear term uses
        # (e^eps - 1) eps per query, matching DRV.
        assert math.isclose(hetero.epsilon, homo.epsilon, rel_tol=1e-9)

    def test_empty_sequence(self):
        assert strong_composition_heterogeneous([], 1e-6).is_zero

    def test_order_invariant(self):
        budgets = [PrivacyBudget(e) for e in (0.1, 0.02, 0.3)]
        a = strong_composition_heterogeneous(budgets, 1e-6)
        b = strong_composition_heterogeneous(list(reversed(budgets)), 1e-6)
        assert a.approx_eq(b)


class TestOptimal:
    def test_never_worse_than_basic(self):
        for k in (1, 3, 10, 100, 3000):
            out = optimal_composition_homogeneous(0.05, 0.0, k, 1e-6)
            assert out.epsilon <= 0.05 * k + 1e-12

    def test_never_worse_than_advanced(self):
        for k in (10, 100, 1000):
            kov = optimal_composition_homogeneous(0.05, 0.0, k, 1e-6)
            drv = advanced_composition(0.05, 0.0, k, 1e-6)
            assert kov.epsilon <= drv.epsilon + 1e-12


class TestRogersFilter:
    def test_empty_history_is_zero(self):
        assert rogers_filter_epsilon([], 1.0, 1e-7) == 0.0

    def test_monotone_in_history(self):
        a = rogers_filter_epsilon([0.1] * 3, 1.0, 1e-7)
        b = rogers_filter_epsilon([0.1] * 4, 1.0, 1e-7)
        assert b > a

    def test_admits_small_sequences(self):
        epsilons = [0.05] * 4
        deltas = [0.0] * 4
        assert rogers_filter_admits(epsilons, deltas, 1.0, 1e-6, 5e-7)

    def test_rejects_overrun(self):
        epsilons = [0.5] * 4
        assert not rogers_filter_admits(epsilons, [0.0] * 4, 1.0, 1e-6, 5e-7)

    def test_filter_admits_more_small_queries_than_basic(self):
        """The raison d'etre of strong composition: many small queries."""
        eps_g, slack = 1.0, 1e-7
        eps_q = 0.01
        # basic composition runs out after 100 queries of 0.01
        k_basic = int(eps_g / eps_q)
        k = k_basic
        while rogers_filter_epsilon([eps_q] * (k + 1), eps_g, slack) <= eps_g:
            k += 1
        # The adaptive filter pays a constant-factor tax (Rogers et al.'s
        # 28.04), so the gain is modest at eps_g = 1 -- but it must admit
        # strictly more small queries than budgets-just-add accounting.
        assert k > 1.25 * k_basic

    def test_delta_side_enforced(self):
        assert not rogers_filter_admits(
            [0.01], [1e-6], 1.0, 1e-6, 5e-7  # query delta + slack > delta_g
        )

    def test_mismatched_lengths_raise(self):
        with pytest.raises(InvalidBudgetError):
            rogers_filter_admits([0.1], [], 1.0, 1e-6, 5e-7)

    def test_invalid_global_epsilon(self):
        with pytest.raises(InvalidBudgetError):
            rogers_filter_epsilon([0.1], 0.0, 1e-7)

    @given(
        st.lists(st.floats(min_value=0.001, max_value=0.2), min_size=1, max_size=30)
    )
    @settings(max_examples=50)
    def test_filter_value_at_least_half_of_sum_of_squares_term(self, epsilons):
        """K always exceeds the pure linear part (sanity of the formula)."""
        value = rogers_filter_epsilon(epsilons, 1.0, 1e-7)
        linear = sum(math.expm1(e) * e / 2.0 for e in epsilons)
        assert value >= linear
