"""Exponential mechanism and noisy-max selection."""

import numpy as np
import pytest

from repro.dp.selection import dp_argmax_count, exponential_mechanism, report_noisy_max
from repro.errors import CalibrationError, DataError


class TestExponentialMechanism:
    def test_prefers_high_utility(self):
        rng = np.random.default_rng(0)
        utilities = [0.0, 0.0, 10.0]
        picks = [
            exponential_mechanism(utilities, epsilon=2.0, sensitivity=1.0, rng=rng)
            for _ in range(300)
        ]
        assert np.mean(np.array(picks) == 2) > 0.9

    def test_uniform_at_tiny_epsilon(self):
        rng = np.random.default_rng(1)
        utilities = [0.0, 1.0]
        picks = [
            exponential_mechanism(utilities, epsilon=1e-6, sensitivity=1.0, rng=rng)
            for _ in range(2000)
        ]
        assert 0.4 < np.mean(picks) < 0.6  # ~coin flip

    def test_sharper_with_epsilon(self):
        utilities = [0.0, 1.0]
        def hit_rate(eps, seed):
            rng = np.random.default_rng(seed)
            return np.mean([
                exponential_mechanism(utilities, eps, 1.0, rng) for _ in range(1000)
            ])
        assert hit_rate(8.0, 2) > hit_rate(0.5, 2)

    def test_invalid_args(self, rng):
        with pytest.raises(CalibrationError):
            exponential_mechanism([1.0], 0.0, 1.0, rng)
        with pytest.raises(CalibrationError):
            exponential_mechanism([1.0], 1.0, 0.0, rng)
        with pytest.raises(DataError):
            exponential_mechanism([], 1.0, 1.0, rng)

    def test_numerically_stable_with_huge_utilities(self, rng):
        idx = exponential_mechanism([1e6, 2e6], 1.0, 1.0, rng)
        assert idx in (0, 1)


class TestNoisyMax:
    def test_clear_winner(self, rng):
        picks = [
            report_noisy_max([0.0, 100.0, 0.0], 1.0, 1.0, rng) for _ in range(100)
        ]
        assert np.mean(np.array(picks) == 1) > 0.95

    def test_low_epsilon_randomizes(self, rng):
        picks = [report_noisy_max([0.0, 1.0], 0.01, 1.0, rng) for _ in range(500)]
        assert 0.3 < np.mean(picks) < 0.7

    def test_invalid(self, rng):
        with pytest.raises(CalibrationError):
            report_noisy_max([1.0], -1.0, 1.0, rng)


class TestArgmaxCount:
    def test_finds_modal_key(self, rng):
        keys = np.array([0] * 10 + [1] * 500 + [2] * 10)
        assert dp_argmax_count(keys, 3, 1.0, rng) == 1

    def test_key_bounds(self, rng):
        with pytest.raises(DataError):
            dp_argmax_count(np.array([5]), 3, 1.0, rng)

    def test_model_selection_use_case(self, rng):
        """Pick the best of several candidate models by DP validation loss."""
        candidate_losses = [0.21, 0.08, 0.19, 0.30]  # per-mean on 1000 points
        # utility = -loss; sensitivity of a mean of [0,1] losses is 1/n.
        idx = exponential_mechanism(
            [-l for l in candidate_losses], epsilon=1.0, sensitivity=1.0 / 1000, rng=rng
        )
        assert idx == 1
