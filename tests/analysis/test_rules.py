"""Per-rule contract tests: each rule fires on its known-bad fixture and
stays silent on the fixed twin (and outside its scope)."""

from pathlib import Path

import pytest

from repro.analysis.engine import Module, Project, run_rules
from repro.analysis.rules.api_hygiene import ApiHygieneRule
from repro.analysis.rules.float_determinism import FloatDeterminismRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.paired_calls import PairedCallsRule
from repro.analysis.rules.purity import PurityRule
from repro.analysis.rules.rollback import RollbackCompletenessRule
from repro.analysis.rules.schema_width import SchemaWidthRule
from repro.analysis.rules.telemetry import TelemetryIsolationRule
from repro.analysis.rules.thread_shared import ThreadSharedStateRule
from repro.analysis.rules.wal_ordering import WalOrderingRule

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

# (rule class, fixture stem, relpath the fixture is linted *as*, findings
# expected from the bad twin).  The faked relpath places the snippet inside
# the rule's scope; the good twin must be silent at the same relpath.
CASES = [
    (PurityRule, "purity", "src/repro/core/fixture_mod.py", 4),
    (PairedCallsRule, "paired_calls", "src/repro/core/fixture_mod.py", 5),
    (SchemaWidthRule, "schema_width", "tests/core/fixture_mod.py", 3),
    (ThreadSharedStateRule, "thread_shared", "src/repro/core/fixture_mod.py", 3),
    (FloatDeterminismRule, "float_determinism", "src/repro/core/fixture_mod.py", 2),
    (ApiHygieneRule, "api_hygiene", "tests/core/fixture_mod.py", 4),
    (RollbackCompletenessRule, "rollback", "src/repro/core/fixture_mod.py", 3),
    (WalOrderingRule, "wal_ordering", "src/repro/core/fixture_mod.py", 5),
    (LockDisciplineRule, "lock_discipline", "src/repro/core/fixture_mod.py", 3),
    (TelemetryIsolationRule, "telemetry", "src/repro/core/fixture_mod.py", 3),
    (TelemetryIsolationRule, "telemetry_obs", "src/repro/obs/fixture_mod.py", 2),
    (TelemetryIsolationRule, "telemetry_profiler", "src/repro/core/fixture_mod.py", 3),
]


def lint_fixture(rule_cls, stem, relpath):
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    module = Module.from_source(source, relpath)
    findings, _ = run_rules(Project(REPO_ROOT, [module]), [rule_cls()])
    return findings


@pytest.mark.parametrize(
    "rule_cls,stem,relpath,expected", CASES, ids=[c[0].name for c in CASES]
)
class TestFixturePairs:
    def test_fires_on_known_bad(self, rule_cls, stem, relpath, expected):
        findings = lint_fixture(rule_cls, f"{stem}_bad", relpath)
        assert len(findings) == expected
        assert all(f.rule == rule_cls.name for f in findings)

    def test_silent_on_fixed(self, rule_cls, stem, relpath, expected):
        assert lint_fixture(rule_cls, f"{stem}_good", relpath) == []


class TestScoping:
    def test_purity_out_of_scope_outside_core(self):
        # The same bad snippet linted as workload code: purity does not bind.
        findings = lint_fixture(PurityRule, "purity_bad", "src/repro/workload/x.py")
        assert findings == []

    def test_schema_width_allows_owner_modules(self):
        findings = lint_fixture(
            SchemaWidthRule, "schema_width_bad", "src/repro/core/accountant.py"
        )
        assert findings == []

    def test_paired_calls_out_of_scope_in_tests(self):
        # Tests open batches mid-assertion to exercise error paths on purpose.
        findings = lint_fixture(
            PairedCallsRule, "paired_calls_bad", "tests/core/test_x.py"
        )
        assert findings == []


class TestPurityMessages:
    def test_finding_names_the_seed_chain(self):
        # Chains are class-qualified since the typed call-graph port.
        findings = lint_fixture(PurityRule, "purity_bad", "src/repro/core/m.py")
        assert any("<- Session.propose_peek" in f.message for f in findings)

    def test_finding_names_the_exact_mutation_path(self):
        findings = lint_fixture(PurityRule, "purity_bad", "src/repro/core/m.py")
        messages = "\n".join(f.message for f in findings)
        assert "assigns self.window_blocks" in messages
        assert "writes self._seen[...]" in messages
        assert "calls mutator self._store.retire()" in messages

    def test_mutation_outside_reachable_set_is_legal(self):
        # purity_good's settle() mutates freely: not reachable from any seed.
        assert lint_fixture(PurityRule, "purity_good", "src/repro/core/m.py") == []
