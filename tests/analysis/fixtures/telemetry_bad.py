"""Known-bad telemetry fixture: emission on the pure read path.

Linted with a faked relpath inside ``src/repro/core/`` -- the real tree
never sees this file (the engine skips directories named ``fixtures``).
"""


class Accountant:
    def can_charge(self, keys, budget):
        self._tracer.event("charge.peeked", keys=len(keys))  # emission on a seed
        return self._scan(keys, budget)

    def _scan(self, keys, budget):
        with self._tracer.span("scan.window"):  # emission on a reachable helper
            rows = self._rows(keys)
        self._metrics.inc("sage_scans_total")  # registry write on the read path
        return all(rows)

    def _rows(self, keys):
        return [True for _ in keys]
