"""Known-bad purity fixture: a helper reachable from propose_peek mutates.

Linted with a faked relpath inside ``src/repro/core/`` -- the real tree
never sees this file (the engine skips directories named ``fixtures``).
"""


class Session:
    def propose_peek(self):
        return self._select_attempt()

    def _select_attempt(self):
        self.window_blocks = 1  # mutation on the pure read path
        self._seen[0] = True
        self._pending.add("x")
        self._store.retire([0])
        return None
