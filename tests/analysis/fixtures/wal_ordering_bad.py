"""Known-bad fixture for the wal-ordering rule.

Five violations: an unsynced log write, a commit with no write-ahead
append, a branch that can commit before appending, a commit marker with
a constant (stale) digest, and a rename published without fsync.
"""

import os


class WalLog:
    def append(self, record):
        # Finding 1: bytes hit the handle but no _sync()/fsync() follows
        # on the return path -- a crash loses the buffered record.
        self._fh.write(encode(record))

    def abort(self):
        if self._start is None:
            return
        self._fh.seek(self._start)
        self._fh.truncate()
        self._sync()


def drive_no_append(wal, sage):
    wal.begin_hour()
    # Finding 2: a commit marker with no write-ahead record above it.
    wal.commit_hour(0, state_digest(sage))


def drive_reordered(wal, sage, record, cheap):
    wal.begin_hour()
    if not cheap:
        wal.append_hour(record)
    # Finding 3: the `cheap` branch reaches the marker without the record.
    wal.commit_hour(0, state_digest(sage))


def drive_stale_digest(wal, sage, record):
    wal.begin_hour()
    wal.append_hour(record)
    # Finding 4: a constant digest makes recovery's parity check a no-op.
    wal.commit_hour(0, 12345)


def publish(tmp, final, blob):
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
    # Finding 5: the rename can land before the payload without fsync.
    os.replace(tmp, final)
