"""Suppression-scope fixture, violating half: a decorated function with a
multi-line signature whose body touches raw totals columns.  No allow
comment anywhere, so both column accesses must surface as findings even
though they hide behind a decorator and a signature that spans lines."""


def traced(fn):
    return fn


class Reporter:
    @traced
    def hourly_summary(
        self,
        store,
        *,
        include_retired=False,
        scale=1.0,
    ):
        spent = store.totals[:, 0].sum() * scale
        burned = store.totals[:, 1].sum()
        return spent, burned
