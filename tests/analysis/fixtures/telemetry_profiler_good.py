"""Fixed profiler fixture: wall-clock emission only on the mutating drive.

The commit path measures pool work into a plain local dict (no telemetry
off the serial path) and replays it serially through ``record_span`` --
the PR 10 pattern for per-shard attribution.
"""


class Accountant:
    def can_charge(self, keys, budget):
        return self._scan(keys, budget)

    def _scan(self, keys, budget):
        return all(self._rows(keys))

    def _rows(self, keys):
        return [True for _ in keys]

    def charge_many(self, requests):
        # Emission is fine here: charge_many IS the serial mutating drive.
        walls = {shard: 1.0 for shard, _ in enumerate(requests)}
        with self._probe.span("charge.batch", requests=len(requests)):
            committed = [self._scan(keys, budget) for keys, budget in requests]
        for shard, wall in sorted(walls.items()):
            self._profiler.record_span("shard.validate", wall, shard=shard)
        return committed
