"""Fixed paired-calls fixture: every opener closes from a finally."""


def drive(acc, requests):
    acc.begin_staging()
    try:
        for keys, budget in requests:
            acc.stage_charge(keys, budget)
    finally:
        acc.commit_staged()


def peek_all(acc, sessions):
    acc.begin_scan_memo()
    try:
        return [s.propose_peek() for s in sessions]
    finally:
        acc.end_scan_memo()
