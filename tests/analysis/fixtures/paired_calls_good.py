"""Fixed paired-calls fixture: every opener closes from a finally."""


def drive(acc, requests):
    acc.begin_staging()
    try:
        for keys, budget in requests:
            acc.stage_charge(keys, budget)
    finally:
        acc.commit_staged()


def peek_all(acc, sessions):
    acc.begin_scan_memo()
    try:
        return [s.propose_peek() for s in sessions]
    finally:
        acc.end_scan_memo()


def durable_hour(wal, record, digest):
    wal.begin_hour()
    try:
        wal.append_hour(record)
        wal.commit_hour(record["hour_index"], digest)
    finally:
        if wal.hour_open:
            wal.abort_hour()
