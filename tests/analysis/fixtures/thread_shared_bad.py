"""Known-bad thread-shared-state fixture: pool callables touching shared state."""


class Platform:
    def speculate(self, pool, chunks):
        def peek_chunk(chunk):
            overlay = self._staged  # mutable shared read from a worker
            return [overlay.get(c) for c in chunk]

        return list(pool.map(peek_chunk, chunks))

    def validate(self, pool, shards, results):
        def run(shard):
            results[shard] = shard  # mutates a captured container
            self._accountant.record(shard)  # commit off the serial path
            return shard

        return [pool.submit(run, s) for s in shards]
