"""Fixed obs-side telemetry fixture: observers only read and export."""


def observe_everything(metrics, accountant):
    loss = accountant.stream_loss_bound()
    metrics.set_gauge("sage_privacy_epsilon_spent", loss.epsilon)
    metrics.set_gauge("sage_privacy_blocks_total", len(accountant.block_keys))
