"""Known-bad fixture for the lock-discipline rule.

Three violations: a shared-slab write hidden one call away from the pool
dispatch, a direct overlay write inside a pool callable, and a store
mutator reached through a dispatched helper.
"""


class ShardedAccountant:
    def _validate_shard(self, norm, shard):
        work = self._shards[shard].totals.copy()
        # Finding 1: a worker thread increments the shared per-shard
        # counter slab -- invisible at the dispatch site.
        self._counts[shard] += 1
        return work

    def _flush_shard(self, shard):
        rows = self._pending[shard]
        # Finding 3: a store mutator on a self-rooted receiver, reached
        # through the dispatched helper.
        self._store.write_rows(rows, rows, rows)

    def _validate_many(self, norm):
        pool = self._ensure_pool()
        return list(pool.map(lambda s: self._validate_shard(norm, s), self.shards))

    def _speculate(self, chunks):
        def peek_chunk(chunk):
            # Finding 2: the scan memo is written bare from a worker.
            self._scan_memo[chunk[0]] = chunk
            return list(chunk)

        return list(self._propose_pool.map(peek_chunk, chunks))

    def _drain(self):
        pool = self._ensure_pool()
        return list(pool.map(lambda s: self._flush_shard(s), self.shards))
