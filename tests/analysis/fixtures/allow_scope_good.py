"""Suppression-scope fixture, compliant half: the same decorated,
multi-line-signature function as ``allow_scope_bad.py``, but with one
standalone allow comment above the decorator.  The allow must bind
through the decorator and the whole signature to every body line, so
both column accesses are suppressed by the single comment."""


def traced(fn):
    return fn


class Reporter:
    # repro: allow(schema-width) -- replaying the reference layout for a
    # report that predates the pluggable schema; reviewed, columns pinned.
    @traced
    def hourly_summary(
        self,
        store,
        *,
        include_retired=False,
        scale=1.0,
    ):
        spent = store.totals[:, 0].sum() * scale
        burned = store.totals[:, 1].sum()
        return spent, burned
