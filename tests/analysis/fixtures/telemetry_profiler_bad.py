"""Known-bad profiler fixture: wall-clock emission on the pure read path.

Linted with a faked relpath inside ``src/repro/core/`` -- the real tree
never sees this file (the engine skips directories named ``fixtures``).
"""


class Accountant:
    def can_charge(self, keys, budget):
        self._profiler.record_span("charge.peeked", 12.5)  # profiler emission on a seed
        return self._scan(keys, budget)

    def _scan(self, keys, budget):
        with self._probe.span("scan.window"):  # tee emission on a reachable helper
            rows = self._rows(keys)
        self._profiler.event("scan.done")  # wall-clock event on the read path
        return all(rows)

    def _rows(self, keys):
        return [True for _ in keys]
