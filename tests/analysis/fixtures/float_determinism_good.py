"""Fixed float-determinism fixture: insertion-ordered dedup."""


def apply_many(norm):
    touched = dict.fromkeys(key for keys, _ in norm for key in keys)
    total = 0.0
    for key in touched:  # dict preserves first-touch order
        total += norm[key]
    return total


def dedup_rows(rows):
    seen = set()
    unique = [r for r in rows if not (r in seen or seen.add(r))]
    return [r * 2 for r in unique]  # membership tests on sets stay legal
