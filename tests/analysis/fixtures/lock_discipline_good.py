"""Fixed twin of ``lock_discipline_bad.py``: validation writes only its
local scratch, the memo write holds the lock, and the store fan-out is
dispatched from the serial commit phase over disjoint shard slabs."""


class ShardedAccountant:
    def _validate_shard(self, norm, shard):
        # All scratch is local: the shared slab is only read.
        work = self._shards[shard].totals.copy()
        counts = [0] * len(work)
        for i, _ in enumerate(norm):
            counts[i] += 1
        return work, counts

    def _flush_shard(self, shard):
        rows = self._pending[shard]
        self._store.write_rows(rows, rows, rows)

    def _validate_many(self, norm):
        pool = self._ensure_pool()
        return list(pool.map(lambda s: self._validate_shard(norm, s), self.shards))

    def _speculate(self, chunks):
        def peek_chunk(chunk):
            with self._memo_lock:
                self._scan_memo[chunk[0]] = chunk
            return list(chunk)

        return list(self._propose_pool.map(peek_chunk, chunks))

    def commit_fanout(self):
        # The commit phase writes disjoint per-shard slabs by
        # construction; ordering is the serial caller's job.
        pool = self._ensure_pool()
        return list(pool.map(lambda s: self._flush_shard(s), self.shards))
