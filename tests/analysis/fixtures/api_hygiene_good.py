"""Fixed api-hygiene fixture."""


def collect(charge, acc=None):
    if acc is None:
        acc = []
    acc.append(charge)
    return acc


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None


def check(session, SessionStatus):
    status = session.step()
    assert status == SessionStatus.ACCEPTED
    woken = session.wake()
    assert woken is not None
    return woken
