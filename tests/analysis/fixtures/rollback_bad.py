"""Known-bad fixture for the rollback-completeness rule.

Three violations: a mutated root the rollback never restores, an hour
advanced with no rollback helper at all, and a captured key the rollback
never consumes.
"""


class Platform:
    def _capture_hour(self):
        # "rng_state" is captured but _rollback_hour below never reads it
        # back: captured-but-not-restored state (finding 3).
        return {"clock": self.clock, "rng_state": self.rng.state}

    def _rollback_hour(self, txn):
        self.clock = txn["clock"]
        self.ingestor.restore(txn["clock"])

    def advance(self):
        txn = self._capture_hour()
        self.wal.begin_hour()
        try:
            self.clock += 1
            # Root `_audit` is mutated inside the protected region but
            # _rollback_hour never touches it (finding 1).
            self._audit.append(("hour", self.clock))
            self.wal.append_hour({"clock": self.clock})
        except Exception:
            self._rollback_hour(txn)
            self.wal.abort_hour()
            raise
        self.wal.commit_hour(0, state_digest(self))

    def advance_unprotected(self):
        # Captures and opens the hour, mutates, but has no rollback helper
        # on any exception path (finding 2).
        txn = self._capture_hour()
        self.wal.begin_hour()
        self.counters["hours"] = self.counters.get("hours", 0) + 1
        self.wal.append_hour({"hours": self.counters["hours"]})
        self.wal.commit_hour(0, state_digest(self))
