"""Known-bad obs-side telemetry fixture: an observer mutates accounting.

Linted with a faked relpath inside ``src/repro/obs/``.
"""


def observe_everything(metrics, accountant):
    accountant.charge_many([])  # telemetry must never commit charges
    accountant.store.write_rows([], [], [])  # or write the ledger store
    metrics.set_gauge("sage_privacy_blocks_total", len(accountant.block_keys))
