"""Known-bad float-determinism fixture: set iteration feeding accumulation."""


def apply_many(norm):
    touched = {key for keys, _ in norm for key in keys}
    total = 0.0
    for key in touched:  # unordered: float accumulation order varies
        total += norm[key]
    return total


def dedup_rows(rows):
    return [r * 2 for r in set(rows)]  # comprehension over a set call
