"""Fixed telemetry fixture: emission only on the mutating drive path."""


class Accountant:
    def can_charge(self, keys, budget):
        return self._scan(keys, budget)

    def _scan(self, keys, budget):
        return all(self._rows(keys))

    def _rows(self, keys):
        return [True for _ in keys]

    def charge_many(self, requests):
        # Emission is fine here: charge_many is not reachable from any
        # pure read seed -- it IS the serial mutating drive.
        with self._tracer.span("charge.batch", requests=len(requests)):
            committed = [self._scan(keys, budget) for keys, budget in requests]
        self._metrics.inc("sage_charges_granted_total", sum(committed))
        return committed
