"""Fixed purity fixture: everything reachable from propose_peek only reads."""


class Session:
    def propose_peek(self):
        return self._select_attempt()

    def _select_attempt(self):
        window = list(self._seen)
        return window[:1]

    def settle(self, decision):
        # Mutation is fine here: settle is not reachable from any pure seed.
        self.window_blocks = 1
        self._pending.add(decision)
