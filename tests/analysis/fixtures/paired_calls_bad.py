"""Known-bad paired-calls fixture: opened batches that cannot always close."""


def drive_never_closes(acc, requests):
    acc.begin_staging()
    for keys, budget in requests:
        acc.stage_charge(keys, budget)
    # no commit/abort anywhere: the overlay stays open forever


def drive_closer_outside_finally(acc, requests):
    acc.begin_staging()
    for keys, budget in requests:
        acc.stage_charge(keys, budget)  # a raise here leaks the batch
    acc.commit_staged()


def peek_memo_leaks(acc, sessions):
    acc.begin_scan_memo()
    results = [s.propose_peek() for s in sessions]
    acc.end_scan_memo()  # skipped whenever a peek raises
    return results


def hour_never_closes(wal, record):
    wal.begin_hour()
    wal.append_hour(record)
    # no commit/abort: the next begin_hour refuses and the partial hour
    # stays as the log's tail


def hour_closer_outside_finally(wal, record, digest):
    wal.begin_hour()
    wal.append_hour(record)  # a raise here leaves the hour open
    wal.commit_hour(record["hour_index"], digest)
