"""Known-bad paired-calls fixture: opened batches that cannot always close."""


def drive_never_closes(acc, requests):
    acc.begin_staging()
    for keys, budget in requests:
        acc.stage_charge(keys, budget)
    # no commit/abort anywhere: the overlay stays open forever


def drive_closer_outside_finally(acc, requests):
    acc.begin_staging()
    for keys, budget in requests:
        acc.stage_charge(keys, budget)  # a raise here leaks the batch
    acc.commit_staged()


def peek_memo_leaks(acc, sessions):
    acc.begin_scan_memo()
    results = [s.propose_peek() for s in sessions]
    acc.end_scan_memo()  # skipped whenever a peek raises
    return results
