"""Fixed twin of ``wal_ordering_bad.py``: every write syncs, the record
always precedes the marker, the digest is computed at (or provably
before) the commit, and the snapshot fsyncs before it renames."""

import os


class WalLog:
    def append(self, record):
        self._fh.write(encode(record))
        self._sync()

    def abort(self):
        if self._start is None:
            return
        self._fh.seek(self._start)
        self._fh.truncate()
        self._sync()


def drive(wal, sage, record):
    wal.begin_hour()
    wal.append_hour(record)
    wal.commit_hour(0, state_digest(sage))


def drive_precomputed(wal, sage, record):
    # The digest may be bound to a name first, as long as the binding
    # precedes the marker on every path.
    wal.begin_hour()
    wal.append_hour(record)
    digest = state_digest(sage)
    wal.commit_hour(0, digest)


def drive_conditional(wal, sage, record, cheap):
    # Both branches append before the shared commit below.
    wal.begin_hour()
    if cheap:
        wal.append_hour({"kind": "cheap"})
    else:
        wal.append_hour(record)
    wal.commit_hour(0, state_digest(sage))


def publish(tmp, final, blob):
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
