"""Known-bad schema-width fixture: hard-coded totals columns, raw _totals."""


def spent_epsilon(store):
    return store.totals[:, 0].sum()  # hard-coded column


def per_block_delta(acc, key):
    return acc.ledger(key).totals[1]  # hard-coded column on a totals row


def poke(store, row):
    store._totals[row, 2] = 0.0  # raw private-array write
