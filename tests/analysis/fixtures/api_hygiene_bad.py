"""Known-bad api-hygiene fixture: the three footguns."""


def collect(charge, acc=[]):  # mutable default: shared across calls
    acc.append(charge)
    return acc


def swallow(fn):
    try:
        return fn()
    except:  # bare except: eats KeyboardInterrupt and invariant errors
        return None


def check(session, SessionStatus):
    assert session.step() == SessionStatus.ACCEPTED  # stripped under -O
    assert (n := session.wake()) is not None  # walrus vanishes under -O
    return n
