"""Fixed thread-shared-state fixture: callables close over arguments only."""


class Platform:
    def speculate(self, pool, chunks, snapshot):
        def peek_chunk(chunk):
            local = [snapshot.peek(c) for c in chunk]  # frozen-snapshot reads
            return local

        return list(pool.map(peek_chunk, chunks))

    def validate(self, pool, shards):
        return [pool.submit(lambda s: s.checksum(), s) for s in shards]
