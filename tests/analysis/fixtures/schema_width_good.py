"""Fixed schema-width fixture: named constants and row-level indexing."""

from repro.core.accountant import TOT_DELTA, TOT_EPS


def spent_epsilon(store):
    return store.totals[:, TOT_EPS].sum()


def per_block_delta(acc, key):
    return acc.ledger(key).totals[TOT_DELTA]


def row_view(store, row):
    return store.totals[row]  # row indexing is layout-independent
