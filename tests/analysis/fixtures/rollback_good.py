"""Fixed twin of ``rollback_bad.py``: every mutated root is restored,
every captured key is consumed, and the audit log write moves out of the
protected region (it is rebuilt from the WAL on recovery instead)."""


class Platform:
    def _capture_hour(self):
        return {"clock": self.clock, "rng_state": self.rng.state}

    def _rollback_hour(self, txn):
        self.clock = txn["clock"]
        self.rng.restore(txn["rng_state"])
        self.ingestor.restore(txn["clock"])

    def advance(self):
        txn = self._capture_hour()
        self.wal.begin_hour()
        try:
            self.clock += 1
            # Mutation through a local alias: the may-alias analysis maps
            # `ing` back to self.ingestor, which the rollback restores.
            ing = self.ingestor
            ing.add_block(self.clock)
            self.wal.append_hour({"clock": self.clock})
        except Exception:
            self._rollback_hour(txn)
            self.wal.abort_hour()
            raise
        self.wal.commit_hour(0, state_digest(self))
        self._audit.append(("hour", self.clock))
