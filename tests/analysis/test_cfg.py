"""CFG construction and forward-solver units.

The flow-sensitive rules all sit on :mod:`repro.analysis.cfg` and
:mod:`repro.analysis.dataflow`; these tests pin the graph shapes the
builder produces for the constructs the accounting code uses (branches,
loops, try/finally cloning, ``with`` desugaring, exception edges) and
that the worklist solver actually iterates to fixpoint around cycles.
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import NON_RAISING, build_cfg, stmt_can_raise
from repro.analysis.dataflow import (
    ReachingMutations,
    always_followed_by,
    always_precedes,
    feasible_path_exists,
    solve_forward,
)


def cfg_of(source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    func = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func), source.splitlines()


def nodes_on(cfg, lines, needle):
    """Every statement node anchored to the (single) line containing
    ``needle`` -- finally cloning can legally yield several."""
    matching = [i + 1 for i, line in enumerate(lines) if needle in line]
    assert len(matching) == 1, f"{needle!r} must appear on exactly one line"
    found = [n for n in cfg.stmt_nodes() if n.lineno == matching[0]]
    assert found, f"no CFG node for {needle!r}"
    return found


def node_on(cfg, lines, needle):
    found = nodes_on(cfg, lines, needle)
    assert len(found) == 1, f"{needle!r} maps to {len(found)} nodes"
    return found[0]


def reachable_from(cfg, start, kinds=None):
    seen = {start.index}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ, kind in cfg.succs(node):
            if kinds is not None and kind not in kinds:
                continue
            if succ.index not in seen:
                seen.add(succ.index)
                stack.append(succ)
    return seen


class TestConstruction:
    def test_straight_line_chains_entry_to_exit(self):
        cfg, lines = cfg_of(
            """
            def f():
                a = 1
                b = 2
            """
        )
        a = node_on(cfg, lines, "a = 1")
        b = node_on(cfg, lines, "b = 2")
        assert [(s.index, k) for s, k in cfg.succs(a)] == [(b.index, "normal")]
        assert [(s.index, k) for s, k in cfg.succs(b)] == [(cfg.exit.index, "normal")]
        # Constant assignments cannot raise: no edges into <raise> at all.
        assert cfg.preds(cfg.raise_exit) == []

    def test_if_else_branches_rejoin(self):
        cfg, lines = cfg_of(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        test = node_on(cfg, lines, "if flag")
        kinds = sorted(kind for _, kind in cfg.succs(test))
        assert kinds == ["false", "true"]
        join = node_on(cfg, lines, "c = 3")
        for needle in ("a = 1", "b = 2"):
            branch = node_on(cfg, lines, needle)
            assert join.index in reachable_from(cfg, branch)

    def test_while_loop_has_back_edge_and_break_skips_else(self):
        cfg, lines = cfg_of(
            """
            def f(n):
                while n:
                    n = step(n)
                    if n:
                        break
                else:
                    mark()
                after()
            """
        )
        header = node_on(cfg, lines, "while n")
        body = node_on(cfg, lines, "n = step(n)")
        brk = node_on(cfg, lines, "break")
        loop_else = node_on(cfg, lines, "mark()")
        after = node_on(cfg, lines, "after()")
        # The body loops back to the header (never via unwinding).
        assert header.index in reachable_from(
            cfg, body, kinds={"normal", "loop", "true", "false"}
        )
        assert any(kind == "loop" for _, kind in cfg.preds(header))
        # break jumps straight past the else clause...
        assert after.index in reachable_from(cfg, brk, kinds={"normal"})
        assert loop_else.index not in reachable_from(cfg, brk)
        # ...while the else clause is only entered from the header test.
        assert loop_else.index in reachable_from(cfg, header)

    def test_call_statements_get_exception_edges(self):
        cfg, lines = cfg_of(
            """
            def f(res):
                work()
                res.close()
            """
        )
        worker = node_on(cfg, lines, "work()")
        assert any(
            succ.index == cfg.raise_exit.index and kind == "exc"
            for succ, kind in cfg.succs(worker)
        )
        # Declared closers are no-fail cleanup: no exception edge.
        assert "close" in NON_RAISING
        closer = node_on(cfg, lines, "res.close()")
        assert all(kind != "exc" for _, kind in cfg.succs(closer))
        assert stmt_can_raise(worker.stmt) and not stmt_can_raise(closer.stmt)

    def test_try_finally_clones_cleanup_per_exit_kind(self):
        cfg, lines = cfg_of(
            """
            def f():
                try:
                    work()
                finally:
                    cleanup()
            """
        )
        clones = nodes_on(cfg, lines, "cleanup()")
        # One clone on the fall-through exit, one on the exception exit.
        assert len(clones) >= 2
        exit_clones = [
            n for n in clones if cfg.exit.index in reachable_from(cfg, n)
        ]
        raise_clones = [
            n for n in clones if cfg.raise_exit.index in reachable_from(cfg, n)
        ]
        assert exit_clones and raise_clones
        # The exception path out of work() runs the cleanup clone, never
        # the normal one, and cannot skip the finally body entirely.
        worker = node_on(cfg, lines, "work()")
        assert not feasible_path_exists(
            cfg, [worker], [cfg.raise_exit], avoid=clones
        )

    def test_return_routes_through_finally(self):
        cfg, lines = cfg_of(
            """
            def f():
                try:
                    return compute()
                finally:
                    cleanup()
            """
        )
        ret = node_on(cfg, lines, "return compute()")
        clones = nodes_on(cfg, lines, "cleanup()")
        assert not feasible_path_exists(cfg, [ret], [cfg.exit], avoid=clones)

    def test_with_desugars_to_exit_node_on_both_paths(self):
        cfg, lines = cfg_of(
            """
            def f(lock):
                with lock:
                    work()
            """
        )
        exits = [n for n in cfg.nodes if n.label == "<__exit__>"]
        assert exits
        worker = node_on(cfg, lines, "work()")
        # __exit__ runs on the normal path and on the unwinding path.
        assert not feasible_path_exists(cfg, [worker], [cfg.exit], avoid=exits)
        assert not feasible_path_exists(
            cfg, [worker], [cfg.raise_exit], avoid=exits
        )

    def test_catch_all_handler_stops_unwinding(self):
        cfg, lines = cfg_of(
            """
            def f():
                try:
                    work()
                except Exception:
                    fallback = 1
                done = 2
            """
        )
        worker = node_on(cfg, lines, "work()")
        handler = node_on(cfg, lines, "fallback = 1")
        assert handler.index in reachable_from(cfg, worker)
        # A catch-all leaves no unmatched-exception bypass: the only way
        # to unwind would be the handler body itself raising, and this
        # one cannot.
        assert cfg.raise_exit.index not in reachable_from(cfg, worker)

    def test_narrow_handler_keeps_unmatched_bypass(self):
        cfg, lines = cfg_of(
            """
            def f():
                try:
                    work()
                except KeyError:
                    fallback = 1
            """
        )
        worker = node_on(cfg, lines, "work()")
        assert cfg.raise_exit.index in reachable_from(cfg, worker)

    def test_build_cfg_rejects_non_functions(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])


class _GenAnalysis:
    """Synthetic gen-set analysis: each statement node contributes its
    own index; facts are frozensets.  On a cyclic CFG the header's
    in-fact only picks up body contributions on the second visit, so a
    solver that fails to iterate never produces them."""

    def initial(self):
        return frozenset()

    def join(self, facts):
        out = frozenset()
        for fact in facts:
            out |= fact
        return out

    def transfer(self, node, fact):
        return fact | ({node.index} if node.stmt is not None else frozenset())


class TestSolver:
    LOOP = """
        def f(self, items):
            total = 0
            for item in items:
                total = total + item
            return total
        """

    def test_fixpoint_carries_facts_around_the_back_edge(self):
        cfg, lines = cfg_of(self.LOOP)
        in_facts, out_facts = solve_forward(cfg, _GenAnalysis())
        header = node_on(cfg, lines, "for item")
        body = node_on(cfg, lines, "total = total + item")
        # The body's contribution flowed around the loop into the
        # header's in-fact -- that requires a second visit to the header.
        assert body.index in in_facts[header.index]
        # And the solver terminated with every reachable node solved.
        assert cfg.exit.index in in_facts

    def test_reaching_mutations_flow_through_loop(self):
        cfg, lines = cfg_of(
            """
            def f(self, items):
                for item in items:
                    self._audit.append(item)
                self.done = True
            """
        )
        analysis = ReachingMutations(cfg)
        in_facts, _ = solve_forward(cfg, analysis)
        tail = node_on(cfg, lines, "self.done = True")
        reached = {
            analysis.events[i][1].path[:2] for i in in_facts[tail.index]
        }
        assert ("self", "_audit") in reached

    def test_path_queries_on_branches(self):
        cfg, lines = cfg_of(
            """
            def f(flag):
                handle = acquire()
                if flag:
                    release(handle)
                done()
            """
        )
        opener = nodes_on(cfg, lines, "handle = acquire()")
        closer = nodes_on(cfg, lines, "release(handle)")
        assert always_precedes(cfg, opener, closer)
        # The false branch reaches the exit without releasing.
        assert not always_followed_by(cfg, opener, closer)
        assert feasible_path_exists(
            cfg, [cfg.entry], [cfg.exit], avoid=closer
        )
