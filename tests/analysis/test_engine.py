"""Engine mechanics: collection, suppressions, reporting, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import (
    Finding,
    LintError,
    Module,
    Project,
    collect_project,
    dump_json,
    render_human,
    report_as_json,
    run_rules,
    run_rules_parallel,
)
from repro.analysis.rules import ALL_RULES, default_rules
from repro.analysis.rules.api_hygiene import ApiHygieneRule
from repro.analysis.rules.schema_width import SchemaWidthRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(source, relpath, rule):
    module = Module.from_source(source, relpath)
    project = Project(REPO_ROOT, [module])
    return run_rules(project, [rule])


class TestModule:
    def test_parse_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            Module.from_source("def broken(:\n", "src/x.py")

    def test_inline_allow_covers_its_line(self):
        module = Module.from_source(
            "try:\n    pass\nexcept:  # repro: allow(api-hygiene) -- test\n    pass\n",
            "src/x.py",
        )
        assert module.suppressed("api-hygiene", 3)
        assert not module.suppressed("api-hygiene", 4)
        assert not module.suppressed("purity", 3)

    def test_standalone_allow_covers_next_code_line(self):
        source = (
            "# repro: allow(api-hygiene) -- reason opens here\n"
            "# and keeps explaining on a second line\n"
            "\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        module = Module.from_source(source, "src/x.py")
        assert module.suppressed("api-hygiene", 4)

    def test_standalone_allow_binds_through_decorator_to_whole_body(self):
        source = (
            "# repro: allow(schema-width) -- reviewed legacy layout\n"
            "@property\n"
            "def spent(\n"
            "    self,\n"
            "    scale=1.0,\n"
            "):\n"
            "    return self.totals[:, 0] * scale\n"
        )
        module = Module.from_source(source, "src/x.py")
        # Decorator, every signature line, and the body are all covered.
        for line in range(2, 8):
            assert module.suppressed("schema-width", line), line
        assert not module.suppressed("purity", 7)

    def test_standalone_allow_on_plain_statement_stays_one_line(self):
        source = (
            "def f(store):\n"
            "    # repro: allow(schema-width) -- reviewed\n"
            "    a = store.totals[:, 0]\n"
            "    b = store.totals[:, 1]\n"
            "    return a, b\n"
        )
        module = Module.from_source(source, "src/x.py")
        assert module.suppressed("schema-width", 3)
        assert not module.suppressed("schema-width", 4)

    def test_wildcard_allow_suppresses_every_rule(self):
        module = Module.from_source(
            "def f(x=[]):  # repro: allow(*) -- generated code\n    return x\n",
            "src/x.py",
        )
        assert module.suppressed("api-hygiene", 1)
        assert module.suppressed("schema-width", 1)


class TestSuppression:
    BAD = "def f(x=[]):\n    return x\n"

    def test_finding_without_allow(self):
        findings, stats = lint_source(self.BAD, "src/x.py", ApiHygieneRule())
        assert len(findings) == 1
        assert stats["api-hygiene"] == {"findings": 1, "suppressed": 0, "files": 1}

    def test_allow_moves_finding_to_suppressed(self):
        source = "def f(x=[]):  # repro: allow(api-hygiene) -- test double\n    return x\n"
        findings, stats = lint_source(source, "src/x.py", ApiHygieneRule())
        assert findings == []
        assert stats["api-hygiene"] == {"findings": 0, "suppressed": 1, "files": 1}

    def test_allow_for_other_rule_does_not_suppress(self):
        source = "def f(x=[]):  # repro: allow(purity) -- wrong rule\n    return x\n"
        findings, _ = lint_source(source, "src/x.py", ApiHygieneRule())
        assert len(findings) == 1

    def test_allow_scope_fixture_pair(self):
        # The bad half has no allow: both body-line column accesses fire.
        # The good half's single standalone allow above the decorator
        # binds through the multi-line signature to the whole body.
        fixtures = Path(__file__).parent / "fixtures"
        bad = Module.from_source(
            (fixtures / "allow_scope_bad.py").read_text(), "src/allow_scope_bad.py"
        )
        good = Module.from_source(
            (fixtures / "allow_scope_good.py").read_text(), "src/allow_scope_good.py"
        )
        rule = SchemaWidthRule()
        findings, stats = run_rules(Project(REPO_ROOT, [bad]), [rule])
        assert len(findings) == 2
        findings, stats = run_rules(Project(REPO_ROOT, [good]), [rule])
        assert findings == []
        assert stats["schema-width"]["suppressed"] == 2


class TestCollection:
    def test_fixtures_skipped_by_default(self):
        project = collect_project(REPO_ROOT, ["tests/analysis"])
        assert not any("fixtures" in m.relpath for m in project)

    def test_include_fixtures_readmits_them(self):
        project = collect_project(
            REPO_ROOT, ["tests/analysis"], include_fixtures=True
        )
        assert any(m.relpath.endswith("fixtures/purity_bad.py") for m in project)

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="does not exist"):
            collect_project(REPO_ROOT, ["no/such/dir"])

    def test_single_file_and_dedup(self):
        target = "src/repro/analysis/engine.py"
        project = collect_project(REPO_ROOT, [target, target, "src/repro/analysis"])
        assert len([m for m in project if m.relpath == target]) == 1


class TestParallel:
    def test_parallel_matches_serial_on_fixture_tree(self):
        # The fixture tree is the densest finding source we have; every
        # finding and every stat counter must survive the fan-out, in
        # the same order.
        project = collect_project(
            REPO_ROOT, ["tests/analysis/fixtures"], include_fixtures=True
        )
        rules = default_rules()
        serial = run_rules(project, rules)
        assert serial[0]  # the comparison is vacuous on a clean tree
        for jobs in (2, 3, 16):
            assert run_rules_parallel(project, rules, jobs) == serial

    def test_jobs_one_and_oversubscription_fall_back(self):
        project = collect_project(REPO_ROOT, ["src/repro/analysis/engine.py"])
        rules = default_rules()
        serial = run_rules(project, rules)
        assert run_rules_parallel(project, rules, 1) == serial
        # More workers than modules clamps to the module count.
        assert run_rules_parallel(project, rules, 64) == serial


class TestReporting:
    FINDINGS = [
        Finding("src/b.py", 3, 1, "purity", "second"),
        Finding("src/a.py", 9, 5, "api-hygiene", "first"),
    ]
    STATS = {
        "purity": {"findings": 1, "suppressed": 2, "files": 4},
        "api-hygiene": {"findings": 1, "suppressed": 0, "files": 9},
    }

    def test_human_report_lists_findings_and_summary(self):
        text = render_human(sorted(self.FINDINGS), self.STATS, n_files=9)
        lines = text.splitlines()
        assert lines[0] == "src/a.py:9:5: [api-hygiene] first"
        assert lines[1] == "src/b.py:3:1: [purity] second"
        assert "2 finding(s) in 9 file(s) (2 suppressed)" in lines[2]

    def test_json_report_round_trips(self):
        rules = default_rules()
        stats = {rule.name: {"findings": 0, "suppressed": 0, "files": 1} for rule in rules}
        stats["purity"] = {"findings": 1, "suppressed": 3, "files": 5}
        report = report_as_json(
            sorted(self.FINDINGS)[:1], stats, rules, n_files=7, paths=["src"]
        )
        loaded = json.loads(dump_json(report))
        assert loaded == report
        assert loaded["version"] == 1
        assert loaded["clean"] is False
        assert loaded["checked_files"] == 7
        assert loaded["rules"]["purity"]["suppressed"] == 3
        assert list(loaded["rules"]) == [rule.name for rule in rules]
        assert loaded["findings"][0]["rule"] == "api-hygiene"

    def test_json_report_is_deterministic(self):
        rules = default_rules()
        stats = {rule.name: {"findings": 0, "suppressed": 0, "files": 1} for rule in rules}
        a = dump_json(report_as_json([], stats, rules, 1, ["src"]))
        b = dump_json(report_as_json([], stats, rules, 1, ["src"]))
        assert a == b


class TestCli:
    def test_clean_file_exits_zero(self, capsys):
        code = main(["--root", str(REPO_ROOT), "src/repro/analysis/engine.py"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(
            [
                "--root",
                str(REPO_ROOT),
                "--include-fixtures",
                "--rules",
                "api-hygiene",
                "tests/analysis/fixtures/api_hygiene_bad.py",
            ]
        )
        assert code == 1
        assert "[api-hygiene]" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["--root", str(REPO_ROOT), "--rules", "no-such-rule", "src"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["--root", str(REPO_ROOT), "no/such/dir"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.name in out

    def test_jobs_flag_report_matches_serial(self, tmp_path, capsys):
        argv = [
            "--root",
            str(REPO_ROOT),
            "--format",
            "json",
            "tests/analysis/fixtures",
            "--include-fixtures",
        ]
        serial_out = tmp_path / "serial.json"
        par_out = tmp_path / "parallel.json"
        code_serial = main(argv + ["--output", str(serial_out)])
        code_par = main(argv + ["--jobs", "4", "--output", str(par_out)])
        assert code_serial == code_par == 1
        assert serial_out.read_bytes() == par_out.read_bytes()

    def test_json_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main(
            [
                "--root",
                str(REPO_ROOT),
                "--format",
                "json",
                "--output",
                str(out_file),
                "src/repro/analysis/engine.py",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""
        report = json.loads(out_file.read_text())
        assert report["clean"] is True
        assert report["paths"] == ["src/repro/analysis/engine.py"]
