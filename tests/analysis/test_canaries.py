"""Seeded-violation canaries for the flow-sensitive rules.

Each test re-lints *actual* production source with a one-line violation
spliced in and requires the matching rule to fire.  These are the
blindness detectors for the CFG/call-graph machinery: a refactor that
renames an anchor, breaks attribute typing, or mis-builds the protected
region makes a canary fail before the lint gate silently passes
everything (the fixture pairs alone cannot catch that -- they are
self-contained and never exercise the real tree's shapes).
"""

from pathlib import Path

from repro.analysis.engine import Module, Project, collect_project, run_rules
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.rollback import RollbackCompletenessRule
from repro.analysis.rules.wal_ordering import WalOrderingRule

REPO_ROOT = Path(__file__).resolve().parents[2]

PLATFORM = "src/repro/core/platform.py"
DURABILITY = "src/repro/core/durability.py"
SHARDING = "src/repro/core/sharding.py"


def lint_seeded(relpath, anchor, replacement, rule):
    source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
    assert source.count(anchor) == 1, f"anchor moved in {relpath}; update this test"
    seeded = source.replace(anchor, replacement, 1)
    project = collect_project(REPO_ROOT, ["src"])
    modules = [
        Module.from_source(seeded, relpath) if m.relpath == relpath else m
        for m in project
    ]
    findings, _ = run_rules(Project(REPO_ROOT, modules), [rule])
    return findings


def test_seeded_unrestored_mutation_fails_rollback():
    """A new mutation inside _advance_durable's protected region, with no
    matching restore in _rollback_hour, must be flagged."""
    anchor = "wal.append_hour(record)"
    findings = lint_seeded(
        PLATFORM,
        anchor,
        anchor + "\n                self._hour_trace = record",
        RollbackCompletenessRule(),
    )
    assert any(
        f.path == PLATFORM
        and "assigns self._hour_trace" in f.message
        and "_rollback_hour never restores self._hour_trace" in f.message
        for f in findings
    ), "rollback-completeness went blind: seeded unrestored mutation not flagged"


def test_seeded_unsynced_append_fails_wal_ordering():
    """Dropping the fsync after the write-ahead record's write must be
    flagged: buffered bytes break the write-ahead guarantee."""
    anchor = (
        "            self._fh.write(encoded)\n"
        "            self._sync()\n"
        "        if self._metrics is not None:\n"
        '            self._metrics.inc("sage_wal_bytes_total", len(encoded))\n'
        '            self._metrics.observe("sage_wal_append_bytes", len(encoded))'
    )
    findings = lint_seeded(
        DURABILITY,
        anchor,
        anchor.replace("            self._sync()\n", "", 1),
        WalOrderingRule(),
    )
    assert any(
        f.path == DURABILITY and "WalWriter.append_hour" in f.message
        for f in findings
    ), "wal-ordering went blind: seeded unsynced append not flagged"


def test_seeded_stale_digest_fails_wal_ordering():
    """Committing the hour with a constant instead of a live state digest
    must be flagged: recovery's parity check becomes a no-op."""
    anchor = (
        "wal.commit_hour(\n"
        "                self._hours_committed - 1, durability.state_digest(self)\n"
        "            )"
    )
    findings = lint_seeded(
        PLATFORM,
        anchor,
        "wal.commit_hour(self._hours_committed - 1, 0)",
        WalOrderingRule(),
    )
    assert any(
        f.path == PLATFORM and "without a digest" in f.message for f in findings
    ), "wal-ordering went blind: seeded constant digest not flagged"


def test_seeded_shared_write_fails_lock_discipline():
    """A shared-slab write added to _validate_shard -- one call away from
    the commit pool's dispatch -- must be flagged through the typed call
    graph."""
    anchor = "counts_delta = np.zeros(touched.size, dtype=np.int64)"
    findings = lint_seeded(
        SHARDING,
        anchor,
        anchor + "\n        self._scan_memo[shard] = counts_delta",
        LockDisciplineRule(),
    )
    assert any(
        f.path == SHARDING
        and "writes shared self._scan_memo[...]" in f.message
        and "_validate_shard" in f.message
        for f in findings
    ), "lock-discipline went blind: seeded shard write not flagged"


def test_unseeded_control_for_the_new_rules():
    """The exact project build the canaries use, minus the splices, is
    clean under all three new rules."""
    project = collect_project(REPO_ROOT, ["src"])
    findings, _ = run_rules(
        project,
        [RollbackCompletenessRule(), WalOrderingRule(), LockDisciplineRule()],
    )
    assert findings == [], "\n".join(f.render() for f in findings)
