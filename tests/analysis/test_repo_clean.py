"""The linter's gate on the real tree: clean now, and provably not vacuous.

``test_seeded_violation_fails`` is the canary for the whole setup: it
re-lints the *actual* ``adaptive.py`` source with a one-line mutation
spliced into ``propose_peek`` and requires the purity rule to fire.  If a
refactor ever renames the seeds or breaks the call-graph construction so
that the linter goes blind, this test fails before the lint gate silently
starts passing everything.
"""

from pathlib import Path

from repro.analysis.engine import Module, Project, collect_project, run_rules
from repro.analysis.rules import default_rules
from repro.analysis.rules.purity import PurityRule

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_PATHS = ["src", "tests", "benchmarks"]

# A line unique to AdaptiveSession.propose_peek (and _peek-only helpers
# would not do: the splice must land on the pure path itself).
ANCHOR = "window, eps_attempt = self._select_attempt()"


def test_repo_is_clean_under_all_rules():
    project = collect_project(REPO_ROOT, LINT_PATHS)
    findings, _ = run_rules(project, default_rules())
    assert findings == [], "\n".join(f.render() for f in findings)


def test_every_suppression_is_purity_reviewed():
    """Suppressions exist only where the design says they may: the purity
    allows in the accounting modules.  A new allow anywhere else must be a
    conscious, reviewed decision that updates this list."""
    project = collect_project(REPO_ROOT, LINT_PATHS)
    allowed_files = {
        "src/repro/core/accountant.py",
        "src/repro/core/sharding.py",
    }
    for module in project:
        for line, rules in sorted(module.allow.items()):
            assert module.relpath in allowed_files, (
                f"unexpected suppression in {module.relpath}:{line}"
            )
            assert rules == frozenset({"purity"}), (
                f"unexpected rules {sorted(rules)} in {module.relpath}:{line}"
            )


def test_seeded_violation_fails():
    relpath = "src/repro/core/adaptive.py"
    source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
    assert source.count(ANCHOR) == 1, "anchor line moved; update this test"
    indent = " " * 8
    seeded = source.replace(
        ANCHOR, ANCHOR + f"\n{indent}self.window_blocks = 1", 1
    )

    project = collect_project(REPO_ROOT, ["src"])
    modules = [
        Module.from_source(seeded, relpath) if m.relpath == relpath else m
        for m in project
    ]
    findings, _ = run_rules(Project(REPO_ROOT, modules), [PurityRule()])
    assert any(
        f.path == relpath and "assigns self.window_blocks" in f.message
        for f in findings
    ), "purity rule went blind: a seeded propose_peek mutation was not flagged"


def test_unseeded_control_for_the_canary():
    """The exact project build the canary uses, minus the splice, is clean --
    so the canary's failure really is the seeded line."""
    project = collect_project(REPO_ROOT, ["src"])
    findings, _ = run_rules(project, [PurityRule()])
    assert findings == []
