"""Dynamic twin of the static purity rule (see ``repro.analysis.rules.purity``).

The linter proves no *statically visible* write sits on the peek path, but
name-based analysis cannot see through stored callables (allocation hooks,
row filters).  This test closes that hole at runtime: it fingerprints the
complete object graph of a live session -- accountant, ledgers, store
arrays, reservation state, RNG state, everything reachable -- calls
``propose_peek``, and requires the fingerprint to be byte-identical.

The first peek is a warm-up: the documented benign caches (row-key memo,
staged effective-totals growth) may fill once, and the linter's allow
comments cover exactly that.  Purity means *idempotence from the second
call on* -- which is also what the parallel propose drive needs, since it
peeks against an already-warmed accountant.
"""

import enum
import types
from pathlib import Path

import numpy as np
import pytest

from repro.core.access_control import SageAccessControl
from repro.core.adaptive import AdaptiveConfig, AdaptiveSession, SessionStatus
from repro.core.pipeline import PipelineRun
from repro.core.validation.outcomes import Outcome, ValidationResult
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import TimePartitioner
from repro.data.taxi import TaxiGenerator
from repro.dp.budget import PrivacyBudget


class _Threshold:
    """Pure pipeline double (propose_peek must never run it anyway)."""

    name = "oracle"

    def __init__(self, threshold=900.0):
        self.threshold = threshold
        self.calls = []

    def run(self, batch, budget, rng, correct_for_dp=True):
        self.calls.append((len(batch), budget))
        outcome = (
            Outcome.ACCEPT
            if len(batch) * budget.epsilon >= self.threshold
            else Outcome.RETRY
        )
        return PipelineRun(
            name=self.name,
            outcome=outcome,
            validation=ValidationResult(outcome, PrivacyBudget(budget.epsilon, 0.0)),
            budget_charged=budget,
        )


def build_world(hours=8):
    db = GrowingDatabase()
    ingestor = StreamIngestor(
        TaxiGenerator(points_per_hour=1000),
        db,
        TimePartitioner(1.0),
        rng=np.random.default_rng(0),
    )
    access = SageAccessControl(1.0, 1e-6)
    for block in ingestor.advance(hours):
        access.register_block(block.key)
    return db, access


def fingerprint(obj):
    """Deterministic (path, value) trace of the complete object graph."""
    out = []
    _walk(obj, "root", {}, out)
    return out


def _walk(obj, path, seen, out):
    if isinstance(obj, (bool, int, float, complex, str, bytes, type(None))):
        out.append((path, repr(obj)))
        return
    if isinstance(obj, np.ndarray):
        out.append((path, (obj.shape, str(obj.dtype), obj.tobytes())))
        return
    if isinstance(obj, np.generic):
        out.append((path, repr(obj)))
        return
    if isinstance(obj, enum.Enum):
        out.append((path, repr(obj)))
        return
    if isinstance(
        obj,
        (
            types.FunctionType,
            types.MethodType,
            types.BuiltinFunctionType,
            type,
            types.ModuleType,
        ),
    ):
        out.append((path, f"<callable {getattr(obj, '__qualname__', obj)}>"))
        return
    oid = id(obj)
    if oid in seen:
        out.append((path, f"<shared -> {seen[oid]}>"))
        return
    seen[oid] = path
    if isinstance(obj, dict):
        for index, (key, value) in enumerate(obj.items()):
            _walk(key, f"{path}<key {index}>", seen, out)
            _walk(value, f"{path}[{index}]", seen, out)
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            _walk(value, f"{path}[{index}]", seen, out)
    elif isinstance(obj, (set, frozenset)):
        out.append((path, sorted(repr(value) for value in obj)))
    elif isinstance(obj, np.random.Generator):
        _walk(obj.bit_generator.state, f"{path}.bit_generator.state", seen, out)
    elif hasattr(obj, "__dict__"):
        for name in sorted(vars(obj)):
            _walk(vars(obj)[name], f"{path}.{name}", seen, out)
    else:
        out.append((path, f"<opaque {type(obj).__qualname__}>"))


def assert_peek_leaves_no_trace(session, access):
    session.propose_peek()  # warm-up: benign caches may fill exactly once
    before = fingerprint((session, access))
    result = session.propose_peek()
    after = fingerprint((session, access))
    for (path_b, val_b), (path_a, val_a) in zip(before, after):
        assert path_b == path_a and val_b == val_a, (
            f"propose_peek mutated state at {path_b}"
        )
    assert len(before) == len(after)
    return result


class TestProposePeekIsPure:
    @pytest.mark.parametrize("strategy", ["conserve", "aggressive"])
    def test_fresh_session(self, strategy):
        db, access = build_world()
        session = AdaptiveSession(
            _Threshold(),
            access,
            db,
            AdaptiveConfig(strategy=strategy),
            np.random.default_rng(0),
        )
        proposal, status_after = assert_peek_leaves_no_trace(session, access)
        assert proposal is not None
        assert status_after == SessionStatus.RUNNING
        assert session.attempts == []

    def test_mid_protocol_session(self):
        db, access = build_world()
        session = AdaptiveSession(
            _Threshold(threshold=1e12),
            access,
            db,
            AdaptiveConfig(max_attempts=6),
            np.random.default_rng(0),
        )
        status = session.step()  # a few real escalation rounds first
        assert status == SessionStatus.TIMEOUT
        assert_peek_leaves_no_trace(session, access)

    def test_need_data_session(self):
        db = GrowingDatabase()
        access = SageAccessControl(1.0, 1e-6)
        session = AdaptiveSession(
            _Threshold(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        proposal, status_after = assert_peek_leaves_no_trace(session, access)
        assert proposal is None
        assert status_after == SessionStatus.NEED_DATA

    def test_peek_never_runs_the_pipeline(self):
        db, access = build_world()
        pipeline = _Threshold()
        session = AdaptiveSession(
            pipeline, access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        session.propose_peek()
        session.propose_peek()
        assert pipeline.calls == []
