"""Runtime write-barrier sanitizer: freeze semantics, install wiring, and
the end-to-end tripwire on a deliberately mutated pure path."""

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.core.access_control import SageAccessControl
from repro.core.accountant import TOT_EPS, LedgerStore
from repro.core.adaptive import AdaptiveConfig, AdaptiveSession
from repro.core.sharding import ShardedLedgerStore
from repro.dp.budget import PrivacyBudget
from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import TimePartitioner
from repro.data.taxi import TaxiGenerator


@pytest.fixture
def installed_sanitizer():
    sanitizer.install()
    try:
        yield
    finally:
        sanitizer.uninstall()
        # A suite-wide REPRO_SANITIZER=1 run must stay sanitized after
        # this test's teardown.
        sanitizer.install_from_env()


def build_world(hours=3, epsilon_global=1.0):
    db = GrowingDatabase()
    ingestor = StreamIngestor(
        TaxiGenerator(points_per_hour=200),
        db,
        TimePartitioner(1.0),
        rng=np.random.default_rng(0),
    )
    access = SageAccessControl(epsilon_global, 1e-6)
    for block in ingestor.advance(hours):
        access.register_block(block.key)
    return db, access


class NeverPipeline:
    name = "never"

    def run(self, batch, budget, rng, correct_for_dp=True):  # pragma: no cover
        raise AssertionError("peek must not run the pipeline")


class TestWriteBarrier:
    def test_freezes_slabs_and_restores(self):
        store = LedgerStore(capacity=4)
        row = store.append()
        with sanitizer.write_barrier(store):
            with pytest.raises(ValueError):
                store.write_row(row, np.zeros(store.width), 1)
        store.write_row(row, np.zeros(store.width), 1)  # thawed again

    def test_live_mask_stays_writable(self):
        # Deferred retirement marks blocks from read paths: sanctioned.
        store = LedgerStore(capacity=4)
        row = store.append()
        with sanitizer.write_barrier(store):
            store.retire([row])
        assert not store.live[row]

    def test_nested_barriers_compose(self):
        store = LedgerStore(capacity=4)
        row = store.append()
        with sanitizer.write_barrier(store):
            with sanitizer.write_barrier(store):
                pass
            # The inner exit must not thaw the outer window.
            with pytest.raises(ValueError):
                store.write_row(row, np.zeros(store.width), 1)
        store.write_row(row, np.zeros(store.width), 1)

    def test_sharded_store_freezes_mirror_and_shards(self):
        store = ShardedLedgerStore(3, width=4)
        arrays = sanitizer.frozen_arrays(store)
        # Mirror + 3 shards, totals + counts each.
        assert len(arrays) == 8
        with sanitizer.write_barrier(store):
            assert all(not a.flags.writeable for a in arrays)
        assert all(a.flags.writeable for a in arrays)


class TestInstall:
    def test_install_and_uninstall_are_idempotent(self):
        sanitizer.uninstall()  # normalize: the suite may run env-installed
        original = AdaptiveSession.__dict__["propose_peek"]
        sanitizer.install()
        wrapped = AdaptiveSession.__dict__["propose_peek"]
        assert wrapped is not original
        sanitizer.install()  # no double wrap
        assert AdaptiveSession.__dict__["propose_peek"] is wrapped
        sanitizer.uninstall()
        assert AdaptiveSession.__dict__["propose_peek"] is original
        sanitizer.install_from_env()

    def test_env_flag_controls_install(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZER", raising=False)
        assert sanitizer.install_from_env() is False
        monkeypatch.setenv("REPRO_SANITIZER", "1")
        try:
            assert sanitizer.install_from_env() is True
            assert sanitizer.installed()
        finally:
            sanitizer.uninstall()
            monkeypatch.delenv("REPRO_SANITIZER")
            sanitizer.install_from_env()


class TestEndToEnd:
    def test_pure_reads_pass_under_barrier(self, installed_sanitizer):
        db, access = build_world()
        session = AdaptiveSession(
            NeverPipeline(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        proposal, reason = session.propose_peek()
        acct = access.accountant
        keys = db.keys
        assert acct.can_charge(keys[:1], PrivacyBudget(0.1, 0.0)) in (True, False)

    def test_mutated_propose_peek_trips_the_barrier(
        self, installed_sanitizer, monkeypatch
    ):
        """The acceptance canary: a write smuggled into the pure peek path
        must fault as a read-only assignment, at the write."""
        db, access = build_world()
        session = AdaptiveSession(
            NeverPipeline(), access, db, AdaptiveConfig(), np.random.default_rng(0)
        )
        original = AdaptiveSession.__dict__["_select_attempt"]
        if original in sanitizer._installed.values():  # pragma: no cover
            raise AssertionError("_select_attempt must not itself be wrapped")

        def leaky(self):
            acct = self.access.accountant
            acct.store.totals[0, TOT_EPS] += 1.0  # the smuggled ledger write
            return original(self)

        monkeypatch.setattr(AdaptiveSession, "_select_attempt", leaky)
        with pytest.raises(ValueError, match="read-only"):
            session.propose_peek()
