"""End-to-end integration: the whole platform with real DP pipelines."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveConfig,
    DPLossValidator,
    Sage,
    SessionStatus,
    StatisticPipeline,
    TrainingPipeline,
)
from repro.core.access_control import SageAccessControl
from repro.core.accountant import BlockAccountant
from repro.data import TaxiGenerator, UserPartitioner
from repro.dp.budget import PrivacyBudget
from repro.experiments.configs import TAXI_LR, TAXI_X_BOUND
from repro.ml import AdaSSPRegressor, mse


@pytest.mark.slow
class TestTaxiEndToEnd:
    def test_lr_pipeline_releases_and_generalizes(self):
        """A DP LR pipeline on the taxi stream: trains adaptively, releases,
        and the released model honours its target on fresh data."""
        source = TaxiGenerator(points_per_hour=8_000)
        sage = Sage(source, epsilon_global=1.0, delta_global=1e-6, seed=1)
        target = 0.006
        pipeline = TrainingPipeline(
            "taxi-lr",
            trainer_fn=TAXI_LR.trainer_fn(),
            validator=DPLossValidator(target, 1.0, confidence=0.95),
            metric="mse",
        )
        entry = sage.submit(pipeline, AdaptiveConfig())
        sage.run_until_quiet(max_hours=120)
        assert entry.status == SessionStatus.ACCEPTED

        heldout = source.generate(30_000, np.random.default_rng(999))
        released_mse = mse(heldout.y, entry.bundle.model.predict(heldout.X))
        assert released_mse <= target * 1.1  # generalizes (eta-level slack)
        # And the stream guarantee held throughout.
        bound = sage.access.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9

    def test_mixed_workload_shares_blocks(self):
        source = TaxiGenerator(points_per_hour=8_000)
        sage = Sage(source, 1.0, 1e-6, seed=3)
        stat = StatisticPipeline(
            "speed", "hour_of_day", "speed_kmh", 24, 60.0, target=10.0
        )
        lr = TrainingPipeline(
            "lr", TAXI_LR.trainer_fn(), DPLossValidator(0.0060, 1.0), metric="mse"
        )
        sage.submit(stat, AdaptiveConfig(delta=0.0))
        sage.submit(lr, AdaptiveConfig())
        sage.run_until_quiet(max_hours=150)
        statuses = {p.name: p.status for p in sage.pipelines}
        assert statuses["speed"] == SessionStatus.ACCEPTED
        assert statuses["lr"] == SessionStatus.ACCEPTED
        # Both pipelines drew from overlapping blocks (R1 of §3.2).
        speed_blocks = set(sage.pipeline_named("speed").bundle.block_keys)
        lr_blocks = set(sage.pipeline_named("lr").bundle.block_keys)
        assert speed_blocks or lr_blocks


class TestUserLevelPrivacy:
    def test_user_blocks_accounting(self):
        """§4.4: blocks split by user id, budgets tracked per user bucket."""
        gen = TaxiGenerator(points_per_hour=2_000)
        batch = gen.generate(4_000, np.random.default_rng(0))
        blocks = UserPartitioner(num_buckets=8).partition(batch)
        accountant = BlockAccountant(1.0, 1e-6)
        accountant.register_blocks([b.key for b in blocks])

        # A query over three user buckets charges exactly those buckets.
        keys = [blocks[i].key for i in range(3)]
        accountant.charge(keys, PrivacyBudget(0.4, 0.0))
        for block in blocks:
            expected = 0.4 if block.key in keys else 1.0
            headroom = accountant.max_epsilon([block.key], 0.0)
            assert headroom == pytest.approx(1.0 - (0.4 if block.key in keys else 0.0))

    def test_adassp_on_user_partitioned_data(self):
        gen = TaxiGenerator(points_per_hour=2_000)
        rng = np.random.default_rng(1)
        batch = gen.generate(20_000, rng)
        blocks = UserPartitioner(num_buckets=4).partition(batch)
        from repro.data.stream import StreamBatch

        train = StreamBatch.concatenate([b.batch for b in blocks[:3]])
        model = AdaSSPRegressor(
            PrivacyBudget(1.0, 1e-6), x_bound=TAXI_X_BOUND, y_bound=1.0
        ).fit(train.X, train.y, rng)
        test = blocks[3].batch
        assert mse(test.y, model.predict(test.X)) < 0.0069  # beats naive


class TestStrongCompositionDeployment:
    def test_platform_with_strong_filters(self):
        """A Sage deployment using Theorem A.2 accounting end to end."""
        from repro.core import StrongCompositionFilter
        from repro.core.pipeline import StatisticPipeline

        source = TaxiGenerator(points_per_hour=4_000)
        sage = Sage(
            source, 1.0, 1e-6, seed=4, filter_factory=StrongCompositionFilter
        )
        pipeline = StatisticPipeline(
            "speed", "hour_of_day", "speed_kmh", 24, 60.0, target=10.0
        )
        entry = sage.submit(pipeline, AdaptiveConfig(delta=0.0))
        sage.run_until_quiet(max_hours=80)
        assert entry.status == SessionStatus.ACCEPTED
        bound = sage.access.stream_loss_bound()
        assert bound.epsilon <= 1.0 + 1e-9


class TestServingLoop:
    def test_release_serve_evaluate(self):
        """Full lifecycle: train -> release -> serve -> continuous eval."""
        from repro.core import ContinuousEvaluator, PredictionServer

        source = TaxiGenerator(points_per_hour=8_000)
        sage = Sage(source, 1.0, 1e-6, seed=6)
        pipeline = TrainingPipeline(
            "lr",
            TAXI_LR.trainer_fn(),
            DPLossValidator(0.006, loss_bound=0.1),
            metric="mse",
        )
        entry = sage.submit(pipeline, AdaptiveConfig())
        sage.run_until_quiet(max_hours=60)
        assert entry.status == SessionStatus.ACCEPTED

        server = PredictionServer(entry.bundle, region="us-east")
        evaluator = ContinuousEvaluator(server, target=0.006, loss_bound=0.1)
        rng = np.random.default_rng(0)
        for hour in range(3):
            fresh = source.generate(5_000, rng)
            evaluator.tick(fresh.X, fresh.y, epsilon=0.5, clock_hours=float(hour), rng=rng)
        # Fresh same-distribution traffic: healthy model, no regression.
        assert not evaluator.regression_flagged
        assert server.requests_served == 15_000


class TestContextPolicies:
    def test_per_developer_budgets(self):
        """§3.2's per-context policy: two developers, separate ceilings."""
        access = SageAccessControl(2.0, 1e-6)
        for key in range(3):
            access.register_block(key)
        access.add_context("dev-a", 1.0, 1e-6)
        access.add_context("dev-b", 1.0, 1e-6)
        access.request([0], PrivacyBudget(0.9, 0.0), context="dev-a")
        # dev-a nearly exhausted on block 0; dev-b unaffected.
        assert access.max_epsilon([0], 0.0, context="dev-a") == pytest.approx(0.1)
        assert access.max_epsilon([0], 0.0, context="dev-b") == pytest.approx(1.0)
        # The stream-wide ledger saw one 0.9 charge.
        assert access.max_epsilon([0], 0.0) == pytest.approx(1.1)
