"""Synthetic taxi generator: schema, calibration bands, determinism."""

import numpy as np
import pytest

from repro.data.taxi import TAXI_FEATURE_DIM, TaxiGenerator
from repro.errors import DataError


@pytest.fixture(scope="module")
def rides():
    return TaxiGenerator().sample_rides(30_000, np.random.default_rng(11))


class TestSchema:
    def test_feature_dim_is_61(self, rides):
        X = TaxiGenerator.featurize(rides)
        assert X.shape == (len(rides), TAXI_FEATURE_DIM)

    def test_features_are_binary(self, rides):
        X = TaxiGenerator.featurize(rides)
        assert set(np.unique(X)) <= {0.0, 1.0}

    def test_each_row_has_eight_active_groups(self, rides):
        """One active bit per one-hot group: 8 groups -> row sums of 8."""
        X = TaxiGenerator.featurize(rides)
        assert np.all(X.sum(axis=1) == 8.0)

    def test_labels_in_unit_interval(self, rides):
        y = TaxiGenerator.labels(rides)
        assert y.min() >= 0.0 and y.max() <= 1.0

    def test_contextual_ranges(self, rides):
        assert rides.hour.min() >= 0 and rides.hour.max() < 24
        assert rides.day_of_week.max() < 7
        assert rides.week_of_month.max() < 5
        assert rides.passengers.min() >= 1 and rides.passengers.max() <= 6
        assert rides.distance_km.min() > 0


class TestCalibration:
    """The paper-anchored bands (Fig. 5a axes)."""

    def test_naive_mse_near_paper_value(self, rides):
        y = TaxiGenerator.labels(rides)
        assert 0.0055 <= float(np.var(y)) <= 0.0085  # paper: 0.0069

    def test_linear_model_floor_near_paper_value(self, rides):
        from repro.ml.linear import RidgeRegression
        from repro.ml.metrics import mse

        X = TaxiGenerator.featurize(rides)
        y = TaxiGenerator.labels(rides)
        model = RidgeRegression(regularization=1e-3).fit(X[:25_000], y[:25_000])
        floor = mse(y[25_000:], model.predict(X[25_000:]))
        assert 0.0018 <= floor <= 0.0032  # paper: ~0.0024-0.0027

    def test_rush_hour_is_slower(self, rides):
        """The hour-of-day structure the Avg.Speed pipelines aggregate."""
        speeds = TaxiGenerator.true_mean_speed_by("hour_of_day", rides)
        assert speeds[8] < speeds[3]   # 8am rush vs 3am
        assert speeds[17] < speeds[3]  # evening rush


class TestStreamInterface:
    def test_interval_rate(self):
        gen = TaxiGenerator(points_per_hour=1000)
        batch = gen.generate_interval(5.0, 2.0, np.random.default_rng(0))
        assert len(batch) == 2000
        assert batch.timestamps.min() >= 5.0
        assert batch.timestamps.max() < 7.0

    def test_timestamps_sorted(self):
        batch = TaxiGenerator(1000).generate_interval(0.0, 1.0, np.random.default_rng(0))
        assert np.all(np.diff(batch.timestamps) >= 0)

    def test_extras_carry_statistic_columns(self):
        batch = TaxiGenerator(1000).generate_interval(0.0, 1.0, np.random.default_rng(0))
        for key in ("speed_kmh", "hour_of_day", "day_of_week", "week_of_month"):
            assert key in batch.extras

    def test_deterministic_under_seed(self):
        a = TaxiGenerator(500).generate(1000, np.random.default_rng(3))
        b = TaxiGenerator(500).generate(1000, np.random.default_rng(3))
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_invalid_args(self):
        with pytest.raises(DataError):
            TaxiGenerator(points_per_hour=0)
        with pytest.raises(DataError):
            TaxiGenerator().sample_rides(0, np.random.default_rng(0))
        with pytest.raises(DataError):
            TaxiGenerator().generate_interval(0.0, 0.0, np.random.default_rng(0))

    def test_unknown_statistic_key(self, rides):
        with pytest.raises(DataError):
            TaxiGenerator.true_mean_speed_by("month", rides)
