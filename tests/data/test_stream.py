"""StreamBatch, partitioners."""

import numpy as np
import pytest

from repro.data.stream import StreamBatch, TimePartitioner, UserPartitioner
from repro.errors import DataError


def make_batch(n=20, extras=True):
    rng = np.random.default_rng(0)
    return StreamBatch(
        X=rng.normal(size=(n, 3)),
        y=rng.normal(size=n),
        timestamps=np.sort(rng.uniform(0, 5, size=n)),
        user_ids=rng.integers(0, 7, size=n),
        extras={"speed": rng.uniform(0, 60, size=n)} if extras else {},
    )


class TestStreamBatch:
    def test_len(self):
        assert len(make_batch(15)) == 15

    def test_row_count_validation(self):
        with pytest.raises(DataError):
            StreamBatch(
                X=np.ones((3, 2)), y=np.ones(2),
                timestamps=np.ones(3), user_ids=np.ones(3, dtype=int),
            )

    def test_extras_validation(self):
        with pytest.raises(DataError):
            StreamBatch(
                X=np.ones((3, 2)), y=np.ones(3),
                timestamps=np.ones(3), user_ids=np.ones(3, dtype=int),
                extras={"bad": np.ones(2)},
            )

    def test_select_preserves_columns(self):
        batch = make_batch()
        sub = batch.select(np.array([0, 2, 4]))
        assert len(sub) == 3
        assert np.array_equal(sub.X, batch.X[[0, 2, 4]])
        assert np.array_equal(sub.extras["speed"], batch.extras["speed"][[0, 2, 4]])

    def test_concatenate_roundtrip(self):
        batch = make_batch(10)
        a = batch.select(np.arange(4))
        b = batch.select(np.arange(4, 10))
        joined = StreamBatch.concatenate([a, b])
        assert np.array_equal(joined.X, batch.X)
        assert np.array_equal(joined.extras["speed"], batch.extras["speed"])

    def test_concatenate_empty_list_raises(self):
        with pytest.raises(DataError):
            StreamBatch.concatenate([])

    def test_concatenate_mismatched_extras_raises(self):
        with pytest.raises(DataError):
            StreamBatch.concatenate([make_batch(extras=True), make_batch(extras=False)])


class TestTimePartitioner:
    def test_keys_are_absolute_windows(self):
        batch = make_batch(50)
        blocks = TimePartitioner(1.0).partition(batch)
        for block in blocks:
            lo, hi = block.key * 1.0, (block.key + 1) * 1.0
            assert np.all((block.batch.timestamps >= lo) & (block.batch.timestamps < hi))

    def test_blocks_cover_all_rows(self):
        batch = make_batch(50)
        blocks = TimePartitioner(0.5).partition(batch)
        assert sum(len(b) for b in blocks) == 50

    def test_consistent_keys_across_batches(self):
        """Adjacent batches produce non-overlapping, consistent window keys."""
        rng = np.random.default_rng(1)
        early = StreamBatch(
            X=np.ones((10, 1)), y=np.ones(10),
            timestamps=rng.uniform(0, 1, 10), user_ids=np.zeros(10, dtype=int),
        )
        late = StreamBatch(
            X=np.ones((10, 1)), y=np.ones(10),
            timestamps=rng.uniform(1, 2, 10), user_ids=np.zeros(10, dtype=int),
        )
        part = TimePartitioner(1.0)
        keys_early = {b.key for b in part.partition(early)}
        keys_late = {b.key for b in part.partition(late)}
        assert keys_early == {0} and keys_late == {1}

    def test_invalid_window(self):
        with pytest.raises(DataError):
            TimePartitioner(0.0)


class TestUserPartitioner:
    def test_same_user_lands_in_one_block(self):
        batch = make_batch(100)
        blocks = UserPartitioner(num_buckets=4).partition(batch)
        for block in blocks:
            buckets = set((block.batch.user_ids % 4).tolist())
            assert len(buckets) == 1

    def test_covers_all_rows(self):
        batch = make_batch(100)
        blocks = UserPartitioner(num_buckets=4).partition(batch)
        assert sum(len(b) for b in blocks) == 100

    def test_keys_are_tagged(self):
        blocks = UserPartitioner(num_buckets=3).partition(make_batch(30))
        for block in blocks:
            assert block.key[0] == "user"

    def test_invalid_buckets(self):
        with pytest.raises(DataError):
            UserPartitioner(0)


class TestPackedColumns:
    from repro.data.stream import PackedColumns  # noqa: F401  (import check)

    def _packed_with(self, batches):
        from repro.data.stream import PackedColumns

        packed = PackedColumns(batches[0], capacity=2)
        extents = [packed.append(b) for b in batches]
        return packed, extents

    def test_slice_matches_concatenate(self):
        parts = [make_batch(5), make_batch(3), make_batch(7)]
        packed, extents = self._packed_with(parts)
        joined = StreamBatch.concatenate(parts)
        sliced = packed.slice_batch(0, len(joined))
        assert np.array_equal(sliced.X, joined.X)
        assert np.array_equal(sliced.y, joined.y)
        assert np.array_equal(sliced.timestamps, joined.timestamps)
        assert np.array_equal(sliced.user_ids, joined.user_ids)
        assert np.array_equal(sliced.extras["speed"], joined.extras["speed"])

    def test_gather_matches_concatenate_in_order(self):
        parts = [make_batch(4), make_batch(1), make_batch(6), make_batch(2)]
        packed, extents = self._packed_with(parts)
        pick = [2, 0, 3]
        expected = StreamBatch.concatenate([parts[i] for i in pick])
        starts = np.array([extents[i][0] for i in pick])
        lengths = np.array([extents[i][1] for i in pick])
        got = packed.gather(starts, lengths)
        for col in ("X", "y", "timestamps", "user_ids"):
            assert np.array_equal(getattr(got, col), getattr(expected, col))
        assert np.array_equal(got.extras["speed"], expected.extras["speed"])

    def test_gather_many_one_row_extents(self):
        parts = [make_batch(1) for _ in range(200)]
        packed, extents = self._packed_with(parts)
        idx = list(range(0, 200, 2))
        expected = StreamBatch.concatenate([parts[i] for i in idx])
        got = packed.gather(
            np.array([extents[i][0] for i in idx]),
            np.array([extents[i][1] for i in idx]),
        )
        assert np.array_equal(got.timestamps, expected.timestamps)
        assert np.array_equal(got.extras["speed"], expected.extras["speed"])

    def test_gather_rejects_empty_extents(self):
        parts = [make_batch(3), make_batch(0), make_batch(2)]
        packed, extents = self._packed_with(parts)
        with pytest.raises(DataError):
            packed.gather(
                np.array([e[0] for e in extents]),
                np.array([e[1] for e in extents]),
            )
        with pytest.raises(DataError):
            packed.gather(np.array([], dtype=np.intp), np.array([], dtype=np.intp))

    def test_results_are_fresh_copies(self):
        parts = [make_batch(3), make_batch(3)]
        packed, extents = self._packed_with(parts)
        out = packed.slice_batch(0, 6)
        out.y[:] = -1.0
        assert not np.array_equal(packed.slice_batch(0, 6).y, out.y)

    def test_matches_detects_schema_drift(self):
        base = make_batch(4)
        packed, _ = self._packed_with([base])
        assert packed.matches(make_batch(2))
        assert not packed.matches(make_batch(2, extras=False))
        wider = StreamBatch(
            X=np.zeros((2, 5)), y=np.zeros(2), timestamps=np.zeros(2),
            user_ids=np.zeros(2, dtype=np.int64),
            extras={"speed": np.zeros(2)},
        )
        assert not packed.matches(wider)
        int_labels = StreamBatch(
            X=np.zeros((2, 3)), y=np.zeros(2, dtype=np.int32),
            timestamps=np.zeros(2), user_ids=np.zeros(2, dtype=np.int64),
            extras={"speed": np.zeros(2)},
        )
        assert not packed.matches(int_labels)

    def test_concatenate_single_batch_copies(self):
        batch = make_batch(4)
        out = StreamBatch.concatenate([batch])
        assert np.array_equal(out.X, batch.X)
        out.y[:] = -5.0
        assert not np.array_equal(batch.y, out.y)
