"""StreamBatch, partitioners."""

import numpy as np
import pytest

from repro.data.stream import StreamBatch, TimePartitioner, UserPartitioner
from repro.errors import DataError


def make_batch(n=20, extras=True):
    rng = np.random.default_rng(0)
    return StreamBatch(
        X=rng.normal(size=(n, 3)),
        y=rng.normal(size=n),
        timestamps=np.sort(rng.uniform(0, 5, size=n)),
        user_ids=rng.integers(0, 7, size=n),
        extras={"speed": rng.uniform(0, 60, size=n)} if extras else {},
    )


class TestStreamBatch:
    def test_len(self):
        assert len(make_batch(15)) == 15

    def test_row_count_validation(self):
        with pytest.raises(DataError):
            StreamBatch(
                X=np.ones((3, 2)), y=np.ones(2),
                timestamps=np.ones(3), user_ids=np.ones(3, dtype=int),
            )

    def test_extras_validation(self):
        with pytest.raises(DataError):
            StreamBatch(
                X=np.ones((3, 2)), y=np.ones(3),
                timestamps=np.ones(3), user_ids=np.ones(3, dtype=int),
                extras={"bad": np.ones(2)},
            )

    def test_select_preserves_columns(self):
        batch = make_batch()
        sub = batch.select(np.array([0, 2, 4]))
        assert len(sub) == 3
        assert np.array_equal(sub.X, batch.X[[0, 2, 4]])
        assert np.array_equal(sub.extras["speed"], batch.extras["speed"][[0, 2, 4]])

    def test_concatenate_roundtrip(self):
        batch = make_batch(10)
        a = batch.select(np.arange(4))
        b = batch.select(np.arange(4, 10))
        joined = StreamBatch.concatenate([a, b])
        assert np.array_equal(joined.X, batch.X)
        assert np.array_equal(joined.extras["speed"], batch.extras["speed"])

    def test_concatenate_empty_list_raises(self):
        with pytest.raises(DataError):
            StreamBatch.concatenate([])

    def test_concatenate_mismatched_extras_raises(self):
        with pytest.raises(DataError):
            StreamBatch.concatenate([make_batch(extras=True), make_batch(extras=False)])


class TestTimePartitioner:
    def test_keys_are_absolute_windows(self):
        batch = make_batch(50)
        blocks = TimePartitioner(1.0).partition(batch)
        for block in blocks:
            lo, hi = block.key * 1.0, (block.key + 1) * 1.0
            assert np.all((block.batch.timestamps >= lo) & (block.batch.timestamps < hi))

    def test_blocks_cover_all_rows(self):
        batch = make_batch(50)
        blocks = TimePartitioner(0.5).partition(batch)
        assert sum(len(b) for b in blocks) == 50

    def test_consistent_keys_across_batches(self):
        """Adjacent batches produce non-overlapping, consistent window keys."""
        rng = np.random.default_rng(1)
        early = StreamBatch(
            X=np.ones((10, 1)), y=np.ones(10),
            timestamps=rng.uniform(0, 1, 10), user_ids=np.zeros(10, dtype=int),
        )
        late = StreamBatch(
            X=np.ones((10, 1)), y=np.ones(10),
            timestamps=rng.uniform(1, 2, 10), user_ids=np.zeros(10, dtype=int),
        )
        part = TimePartitioner(1.0)
        keys_early = {b.key for b in part.partition(early)}
        keys_late = {b.key for b in part.partition(late)}
        assert keys_early == {0} and keys_late == {1}

    def test_invalid_window(self):
        with pytest.raises(DataError):
            TimePartitioner(0.0)


class TestUserPartitioner:
    def test_same_user_lands_in_one_block(self):
        batch = make_batch(100)
        blocks = UserPartitioner(num_buckets=4).partition(batch)
        for block in blocks:
            buckets = set((block.batch.user_ids % 4).tolist())
            assert len(buckets) == 1

    def test_covers_all_rows(self):
        batch = make_batch(100)
        blocks = UserPartitioner(num_buckets=4).partition(batch)
        assert sum(len(b) for b in blocks) == 100

    def test_keys_are_tagged(self):
        blocks = UserPartitioner(num_buckets=3).partition(make_batch(30))
        for block in blocks:
            assert block.key[0] == "user"

    def test_invalid_buckets(self):
        with pytest.raises(DataError):
            UserPartitioner(0)
