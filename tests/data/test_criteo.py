"""Synthetic Criteo generator: schema and calibration bands."""

import numpy as np
import pytest

from repro.data.criteo import (
    CRITEO_CARDINALITIES,
    CRITEO_NAIVE_ACCURACY,
    CriteoGenerator,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def gen():
    return CriteoGenerator()


@pytest.fixture(scope="module")
def impressions(gen):
    return gen.sample_impressions(40_000, np.random.default_rng(5))


class TestSchema:
    def test_26_categorical_features(self, impressions):
        assert impressions.categorical.shape[1] == 26

    def test_13_numeric_features(self, impressions):
        assert impressions.numeric.shape[1] == 13

    def test_numeric_in_unit_interval(self, impressions):
        assert impressions.numeric.min() >= 0.0
        assert impressions.numeric.max() <= 1.0

    def test_categories_within_cardinalities(self, impressions):
        for j, card in enumerate(CRITEO_CARDINALITIES):
            col = impressions.categorical[:, j]
            assert col.min() >= 0 and col.max() < card

    def test_featurized_dim(self, gen, impressions):
        X = gen.featurize(impressions)
        assert X.shape[1] == 13 + sum(CRITEO_CARDINALITIES)
        assert X.shape[1] == gen.feature_dim

    def test_one_hot_blocks_sum_to_one(self, gen, impressions):
        X = gen.featurize(impressions)
        assert np.all(X[:, 13:].sum(axis=1) == 26.0)

    def test_labels_binary(self, impressions):
        assert set(np.unique(impressions.clicked)) <= {0.0, 1.0}


class TestCalibration:
    def test_click_rate_near_paper(self, impressions):
        rate = float(impressions.clicked.mean())
        assert abs(rate - (1.0 - CRITEO_NAIVE_ACCURACY)) < 0.02

    def test_bayes_accuracy_near_paper(self, gen, impressions):
        probs = gen.bayes_probabilities(impressions)
        bayes = float(np.mean(np.maximum(probs, 1.0 - probs)))
        assert 0.775 <= bayes <= 0.80  # paper's achievable ceiling ~0.78

    def test_probabilities_consistent_with_labels(self, gen):
        """Labels drawn from the stated probabilities: calibration check."""
        imp = gen.sample_impressions(60_000, np.random.default_rng(8))
        probs = gen.bayes_probabilities(imp)
        hi = probs > 0.5
        assert imp.clicked[hi].mean() > imp.clicked[~hi].mean() + 0.2

    def test_logistic_regression_approaches_bayes(self, gen):
        """The ground truth is (nearly) linear in the featurization, so LG
        should close most of the gap from majority to Bayes."""
        from repro.ml.estimators import MLPClassifierEstimator
        from repro.ml.sgd import SGDConfig

        rng = np.random.default_rng(2)
        batch = gen.generate(40_000, rng)
        est = MLPClassifierEstimator(
            (), SGDConfig(learning_rate=0.5, epochs=4, batch_size=256)
        )
        est.fit(batch.X[:36_000], batch.y[:36_000], rng)
        acc = float(np.mean(est.predict_labels(batch.X[36_000:]) == batch.y[36_000:]))
        assert acc > 0.765  # naive = 0.743, bayes ~= 0.786


class TestStreamInterface:
    def test_interval_and_extras(self, gen):
        batch = gen.generate_interval(0.0, 0.5, np.random.default_rng(0))
        assert len(batch) == gen.points_per_hour // 2
        assert "cat_0" in batch.extras and "cat_25" in batch.extras

    def test_same_population_across_batches(self):
        """Two generators with the same seed share ground-truth weights."""
        g1, g2 = CriteoGenerator(seed=7), CriteoGenerator(seed=7)
        imp = g1.sample_impressions(100, np.random.default_rng(0))
        assert np.allclose(g1.bayes_probabilities(imp), g2.bayes_probabilities(imp))

    def test_invalid_rate(self):
        with pytest.raises(DataError):
            CriteoGenerator(points_per_hour=0)
