"""GrowingDatabase and StreamIngestor."""

import numpy as np
import pytest

from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import RawBlock, StreamBatch, TimePartitioner
from repro.data.taxi import TaxiGenerator
from repro.errors import DataError


def raw_block(key, n=10):
    rng = np.random.default_rng(key if isinstance(key, int) else 0)
    return RawBlock(
        key=key,
        batch=StreamBatch(
            X=rng.normal(size=(n, 2)), y=rng.normal(size=n),
            timestamps=np.sort(rng.uniform(0, 1, n)),
            user_ids=rng.integers(0, 5, n),
        ),
    )


class TestGrowingDatabase:
    def test_append_and_get(self):
        db = GrowingDatabase()
        db.append(raw_block(0))
        assert 0 in db
        assert len(db) == 1
        assert len(db.get(0)) == 10

    def test_duplicate_key_rejected(self):
        db = GrowingDatabase()
        db.append(raw_block(0))
        with pytest.raises(DataError):
            db.append(raw_block(0))

    def test_insertion_order_preserved(self):
        db = GrowingDatabase()
        db.extend([raw_block(k) for k in (5, 1, 9)])
        assert db.keys == [5, 1, 9]
        assert db.latest_keys(2) == [1, 9]

    def test_assemble_concatenates(self):
        db = GrowingDatabase()
        db.extend([raw_block(0, 5), raw_block(1, 7)])
        batch = db.assemble([0, 1])
        assert len(batch) == 12
        assert db.rows_in([0, 1]) == 12

    def test_assemble_empty_raises(self):
        with pytest.raises(DataError):
            GrowingDatabase().assemble([])

    def test_missing_key_raises(self):
        with pytest.raises(DataError):
            GrowingDatabase().get(42)

    def test_total_rows_and_sizes(self):
        db = GrowingDatabase()
        db.extend([raw_block(0, 3), raw_block(1, 4)])
        assert db.total_rows() == 7
        assert db.block_sizes() == {0: 3, 1: 4}


class TestStreamIngestor:
    def test_advance_creates_hourly_blocks(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=500), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        blocks = ing.advance(3.0)
        assert len(blocks) == 3
        assert db.keys == [0, 1, 2]
        assert ing.clock_hours == 3.0

    def test_repeated_advances_continue_keys(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=500), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        ing.advance(2.0)
        ing.advance(2.0)
        assert db.keys == [0, 1, 2, 3]

    def test_block_sizes_match_rate(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=600), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        ing.advance(2.0)
        sizes = db.block_sizes()
        assert sum(sizes.values()) == 1200

    def test_invalid_hours(self):
        db = GrowingDatabase()
        ing = StreamIngestor(TaxiGenerator(500), db, rng=np.random.default_rng(0))
        with pytest.raises(DataError):
            ing.advance(0.0)


class TestPackedAssembly:
    """The packed-column assembly fast path must be value-identical to the
    per-block concatenation fallback, contiguous or not."""

    def _db_with_blocks(self, sizes, start_key=0):
        from repro.data.stream import RawBlock

        rng = np.random.default_rng(0)
        db = GrowingDatabase()
        for i, n in enumerate(sizes):
            batch = StreamBatch(
                X=rng.normal(size=(n, 2)),
                y=rng.normal(size=n),
                timestamps=np.sort(rng.uniform(0, 5, size=n)),
                user_ids=rng.integers(0, 7, size=n),
                extras={"speed": rng.uniform(0, 60, size=n)},
            )
            db.append(RawBlock(key=start_key + i, batch=batch))
        return db

    @staticmethod
    def _reference(db, keys):
        return StreamBatch.concatenate([db.get(k).batch for k in keys])

    def _assert_equal(self, got, expected):
        for col in ("X", "y", "timestamps", "user_ids"):
            assert np.array_equal(getattr(got, col), getattr(expected, col))
            assert getattr(got, col).dtype == getattr(expected, col).dtype
        assert set(got.extras) == set(expected.extras)
        for k in expected.extras:
            assert np.array_equal(got.extras[k], expected.extras[k])

    def test_contiguous_window_matches_fallback(self):
        db = self._db_with_blocks([3, 1, 4, 1, 5, 9])
        keys = [1, 2, 3, 4]
        self._assert_equal(db.assemble(keys), self._reference(db, keys))

    def test_non_contiguous_window_matches_fallback(self):
        db = self._db_with_blocks([2, 3, 1, 4, 1, 2, 6])
        keys = [0, 2, 3, 6]
        self._assert_equal(db.assemble(keys), self._reference(db, keys))

    def test_single_block_and_full_stream(self):
        db = self._db_with_blocks([1] * 40)
        self._assert_equal(db.assemble([7]), self._reference(db, [7]))
        self._assert_equal(
            db.assemble(list(range(40))), self._reference(db, list(range(40)))
        )

    def test_assembled_batches_are_fresh(self):
        db = self._db_with_blocks([2, 2])
        out = db.assemble([0, 1])
        out.y[:] = -9.0
        assert not np.array_equal(db.assemble([0, 1]).y, out.y)

    def test_schema_drift_disables_packing_not_assembly(self):
        from repro.data.stream import RawBlock

        db = self._db_with_blocks([2, 3])
        odd = StreamBatch(
            X=np.zeros((2, 2), dtype=np.float32),  # dtype drift
            y=np.zeros(2), timestamps=np.zeros(2),
            user_ids=np.zeros(2, dtype=np.int64), extras={"speed": np.zeros(2)},
        )
        db.append(RawBlock(key=99, batch=odd))
        assert not db._packing  # no new blocks pack after the drift
        keys = [0, 1, 99]
        self._assert_equal(db.assemble(keys), self._reference(db, keys))
        # Blocks packed before the drift keep assembling off the packed
        # store (it is their backing storage, not a droppable cache).
        self._assert_equal(db.assemble([0, 1]), self._reference(db, [0, 1]))
        assert len(db.get(99)) == 2 and len(db.get(0)) == 2

    def test_unknown_key_still_raises(self):
        db = self._db_with_blocks([2, 2])
        with pytest.raises(DataError):
            db.assemble([0, "nope"])

    def test_assemble_accepts_one_shot_iterators(self):
        """Regression: the fast path iterates keys more than once, so a
        generator argument must not silently assemble to nothing."""
        db = self._db_with_blocks([2, 3, 1])
        expected = self._reference(db, [0, 1, 2])
        got = db.assemble(k for k in [0, 1, 2])
        self._assert_equal(got, expected)

    def test_empty_blocks_keep_packing_enabled(self):
        """A zero-length block must not disable the fast path; it packs as
        a zero-length extent and assembles to nothing."""
        from repro.data.stream import RawBlock

        db = self._db_with_blocks([2, 0, 3])
        assert db._packed is not None  # still packing
        for keys in ([0, 1, 2], [0, 2], [1]):
            self._assert_equal(db.assemble(keys), self._reference(db, keys))
        assert len(db.assemble([1])) == 0
