"""GrowingDatabase and StreamIngestor."""

import numpy as np
import pytest

from repro.data.database import GrowingDatabase, StreamIngestor
from repro.data.stream import RawBlock, StreamBatch, TimePartitioner
from repro.data.taxi import TaxiGenerator
from repro.errors import DataError


def raw_block(key, n=10):
    rng = np.random.default_rng(key if isinstance(key, int) else 0)
    return RawBlock(
        key=key,
        batch=StreamBatch(
            X=rng.normal(size=(n, 2)), y=rng.normal(size=n),
            timestamps=np.sort(rng.uniform(0, 1, n)),
            user_ids=rng.integers(0, 5, n),
        ),
    )


class TestGrowingDatabase:
    def test_append_and_get(self):
        db = GrowingDatabase()
        db.append(raw_block(0))
        assert 0 in db
        assert len(db) == 1
        assert len(db.get(0)) == 10

    def test_duplicate_key_rejected(self):
        db = GrowingDatabase()
        db.append(raw_block(0))
        with pytest.raises(DataError):
            db.append(raw_block(0))

    def test_insertion_order_preserved(self):
        db = GrowingDatabase()
        db.extend([raw_block(k) for k in (5, 1, 9)])
        assert db.keys == [5, 1, 9]
        assert db.latest_keys(2) == [1, 9]

    def test_assemble_concatenates(self):
        db = GrowingDatabase()
        db.extend([raw_block(0, 5), raw_block(1, 7)])
        batch = db.assemble([0, 1])
        assert len(batch) == 12
        assert db.rows_in([0, 1]) == 12

    def test_assemble_empty_raises(self):
        with pytest.raises(DataError):
            GrowingDatabase().assemble([])

    def test_missing_key_raises(self):
        with pytest.raises(DataError):
            GrowingDatabase().get(42)

    def test_total_rows_and_sizes(self):
        db = GrowingDatabase()
        db.extend([raw_block(0, 3), raw_block(1, 4)])
        assert db.total_rows() == 7
        assert db.block_sizes() == {0: 3, 1: 4}


class TestStreamIngestor:
    def test_advance_creates_hourly_blocks(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=500), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        blocks = ing.advance(3.0)
        assert len(blocks) == 3
        assert db.keys == [0, 1, 2]
        assert ing.clock_hours == 3.0

    def test_repeated_advances_continue_keys(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=500), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        ing.advance(2.0)
        ing.advance(2.0)
        assert db.keys == [0, 1, 2, 3]

    def test_block_sizes_match_rate(self):
        db = GrowingDatabase()
        ing = StreamIngestor(
            TaxiGenerator(points_per_hour=600), db,
            TimePartitioner(1.0), rng=np.random.default_rng(0),
        )
        ing.advance(2.0)
        sizes = db.block_sizes()
        assert sum(sizes.values()) == 1200

    def test_invalid_hours(self):
        db = GrowingDatabase()
        ing = StreamIngestor(TaxiGenerator(500), db, rng=np.random.default_rng(0))
        with pytest.raises(DataError):
            ing.advance(0.0)
