"""User-level privacy via user-id blocks (§4.4).

Event-level privacy protects individual records; user-level privacy
protects everything one user ever contributes.  Block composition supports
it by splitting the stream on user id instead of time: all of a user's
records land in one block, so retiring that block bounds the total leakage
about that user.

This example partitions a taxi batch into user buckets, trains DP models on
adaptively chosen bucket subsets, and shows the per-bucket accounting --
including the paper's caveat that user-blocks only renew when *new users*
arrive, so sustained workloads need a growing user base.

Run:  python examples/user_level_privacy.py   (~15 seconds)
"""

import numpy as np

from repro.core import BlockAccountant
from repro.data import TaxiGenerator, UserPartitioner
from repro.data.stream import StreamBatch
from repro.dp import PrivacyBudget
from repro.errors import BudgetExceededError
from repro.ml import AdaSSPRegressor, mse

X_BOUND = np.sqrt(8.0)


def main():
    rng = np.random.default_rng(3)
    generator = TaxiGenerator(points_per_hour=4_000)
    batch = generator.generate(40_000, rng)

    # One block per user bucket: every user's rides live in exactly one.
    blocks = UserPartitioner(num_buckets=16).partition(batch)
    accountant = BlockAccountant(epsilon_global=1.0, delta_global=1e-6)
    accountant.register_blocks([b.key for b in blocks])
    by_key = {b.key: b for b in blocks}
    print(f"{len(blocks)} user blocks, sizes "
          f"{min(len(b) for b in blocks)}..{max(len(b) for b in blocks)}")

    # Model 1: train on the first half of the user population.
    first_half = [b.key for b in blocks[:8]]
    accountant.charge(first_half, PrivacyBudget(0.6, 5e-7), label="model-1")
    train = StreamBatch.concatenate([by_key[k].batch for k in first_half])
    model1 = AdaSSPRegressor(PrivacyBudget(0.6, 5e-7), x_bound=X_BOUND).fit(
        train.X, train.y, rng
    )

    # Model 2: an overlapping, adaptively chosen subset -- fine, as long as
    # every touched block still has budget.
    overlap = [b.key for b in blocks[4:12]]
    accountant.charge(overlap, PrivacyBudget(0.4, 5e-7), label="model-2")
    train2 = StreamBatch.concatenate([by_key[k].batch for k in overlap])
    model2 = AdaSSPRegressor(PrivacyBudget(0.4, 5e-7), x_bound=X_BOUND).fit(
        train2.X, train2.y, rng
    )

    heldout = generator.generate(20_000, np.random.default_rng(77))
    print(f"model-1 held-out MSE: {mse(heldout.y, model1.predict(heldout.X)):.5f}")
    print(f"model-2 held-out MSE: {mse(heldout.y, model2.predict(heldout.X)):.5f}")

    # Users in buckets 4..7 were used by both models: their blocks are
    # exhausted (0.6 + 0.4 = eps_g) and now refuse further training.
    print("\nper-bucket privacy loss:")
    for block in blocks:
        spent = sum(b.epsilon for b in accountant.ledger(block.key).history)
        marker = " <- retired" if block.key in accountant.retired_blocks() else ""
        print(f"  bucket {block.key[1]:>2}: eps spent {spent:.2f}{marker}")

    try:
        accountant.charge([blocks[5].key], PrivacyBudget(0.05, 0.0))
    except BudgetExceededError as exc:
        print(f"\nfurther use of bucket 5 denied: {exc}")

    print("\nNote (§4.4): unlike time blocks, user blocks only renew when new")
    print("users join -- the workload rate a deployment can sustain is bounded")
    print("by its user growth, which is why the paper focuses on event-level.")


if __name__ == "__main__":
    main()
