"""Quickstart: one DP pipeline through the whole Sage platform.

Builds a Sage deployment over a (synthetic) NYC-taxi stream, submits a
differentially private linear-regression training pipeline with an MSE
target, and lets privacy-adaptive training escalate data and budget until
the SLAed validator ACCEPTs.  Everything released respects the stream's
global (epsilon_g, delta_g) = (1.0, 1e-6) guarantee -- forever.

Under the hood each simulated hour runs the two-phase propose/settle
protocol: sessions propose charges, the platform stages them, and the whole
hour commits through one batched ``request_many`` call.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace-out quickstart-trace.json
      python examples/quickstart.py --profile-out quickstart-profile.json \
          --flame-out quickstart.folded
"""

import argparse

import numpy as np

from repro.core import AdaptiveConfig, DPLossValidator, Sage, TrainingPipeline
from repro.data import TaxiGenerator
from repro.dp import PrivacyBudget
from repro.ml import AdaSSPRegressor, mse

X_BOUND = np.sqrt(8.0)  # taxi rows are 8 concatenated one-hot groups


def dp_trainer(X, y, budget: PrivacyBudget, rng):
    """The pipeline's DP training stage: AdaSSP linear regression."""
    model = AdaSSPRegressor(budget, rho=0.1, x_bound=X_BOUND, y_bound=1.0)
    return model.fit(X, y, rng)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace of the drive (adds nothing when omitted)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="wall-clock profile the drive and write its Chrome trace JSON",
    )
    parser.add_argument(
        "--flame-out",
        metavar="PATH",
        default=None,
        help="write the profile as collapsed stacks (flamegraph.pl input)",
    )
    args = parser.parse_args(argv)

    telemetry = None
    if args.trace_out or args.profile_out or args.flame_out:
        from repro.obs import Telemetry, WallProfiler

        profiling = args.profile_out or args.flame_out
        telemetry = Telemetry(profiler=WallProfiler() if profiling else None)

    source = TaxiGenerator(points_per_hour=8_000)
    sage = Sage(
        source,
        epsilon_global=1.0,
        delta_global=1e-6,
        block_hours=1.0,
        seed=7,
        telemetry=telemetry,
    )

    # loss_bound is the developer-declared clip B of Listing 2: per-example
    # squared errors are clipped into [0, B] before the DP sum.  Declaring
    # B = 0.1 (instead of the worst-case 1.0) makes the noise corrections
    # 10x tighter, so the SLA resolves with far less data.
    pipeline = TrainingPipeline(
        name="taxi-duration-lr",
        trainer_fn=dp_trainer,
        validator=DPLossValidator(target=0.006, loss_bound=0.1, confidence=0.95),
        metric="mse",
    )
    entry = sage.submit(pipeline, AdaptiveConfig(epsilon_start=1 / 16, epsilon_cap=1.0))

    print("streaming data and training adaptively ...")
    sage.run_until_quiet(max_hours=100)

    if telemetry is not None:
        from repro.obs import write_chrome_trace

        if args.trace_out:
            write_chrome_trace(telemetry.tracer, args.trace_out)
            print(f"trace written to {args.trace_out}")
        if args.profile_out:
            write_chrome_trace(telemetry.profiler, args.profile_out)
            print(f"profile written to {args.profile_out}")
        if args.flame_out:
            from repro.obs.analyze import write_collapsed

            write_collapsed(telemetry.profiler, args.flame_out)
            print(f"collapsed stacks written to {args.flame_out}")

    print(f"\npipeline status : {entry.status}")
    for attempt in entry.session.attempts:
        print(
            f"  attempt {attempt.attempt}: eps={attempt.budget.epsilon:.4f} "
            f"blocks={len(attempt.window)} samples={attempt.train_size} "
            f"-> {attempt.outcome.value}"
        )

    bundle = entry.bundle
    if bundle is None:
        print("no release within the horizon (try more hours)")
        return
    print(f"\nreleased version {bundle.version} at hour {bundle.release_time_hours:.0f}")
    print(f"budget consumed by the search: {entry.session.total_spent}")
    print(f"charges committed through hourly propose/settle batches: "
          f"{len(sage.access.accountant.charges)}")

    heldout = source.generate(30_000, np.random.default_rng(123))
    print(f"held-out MSE: {mse(heldout.y, bundle.model.predict(heldout.X)):.5f} "
          f"(target 0.006, naive 0.0069)")
    print(f"stream-wide privacy loss bound: {sage.access.stream_loss_bound()}")
    print(f"retired blocks so far: {len(sage.access.retired_blocks())} "
          f"of {len(sage.database)}")


if __name__ == "__main__":
    main()
