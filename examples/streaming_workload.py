"""Fig. 8 in miniature: four accounting strategies under a live workload.

Pipelines arrive over time (Gamma inter-arrivals), each needing a power-law
amount of data; the stream grows one block per hour.  The same workload is
scheduled under Sage's block composition (conserve and aggressive variants)
and the two prior-work baselines -- query-level accounting with per-block
sub-queries, and streaming DP.

The block strategies run the real platform under the two-phase protocol:
every simulated hour, waiting sessions *propose* charges, the platform
stages them, and the hour settles through one batched ``request_many``
(``batched_advance=True`` below; flipping it to False drives the identical
per-proposal sequential path).

Run:  python examples/streaming_workload.py   (~1 minute)
"""

from repro.experiments import format_fig8
from repro.workload import WorkloadConfig, WorkloadSimulator


def main():
    rates = (0.1, 0.4, 0.7)
    strategies = ("streaming", "query", "block-aggressive", "block-conserve")
    reports = {}
    for strategy in strategies:
        reports[strategy] = {}
        for i, rate in enumerate(rates):
            config = WorkloadConfig(
                strategy=strategy,
                arrival_rate=rate,
                horizon_hours=250.0,
                points_per_hour=16_000,
                # Settle each simulated hour in one propose/settle batch.
                batched_advance=True,
            )
            report = WorkloadSimulator(config, seed=17 + i).run()
            reports[strategy][rate] = report
            print(f"{strategy:>18} @ {rate:.1f}/h: "
                  f"avg release {report.avg_release_time:6.1f}h, "
                  f"released {report.released}/{report.submitted}")

    print()
    print(format_fig8("Average model release time under load", reports))
    print()
    print("Reading: prior-work composition collapses under load; Sage's")
    print("block composition keeps releasing because new blocks arrive with")
    print("fresh budget (requirement R3 of the paper's Section 3.2).")


if __name__ == "__main__":
    main()
