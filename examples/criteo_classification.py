"""The Criteo click-prediction workload: DP-SGD classifier + DP histograms.

A logistic-regression pipeline (trained with DP-SGD and validated with the
Clopper-Pearson accuracy SLA) shares the ad-impression stream with two of
Table 1's per-feature count pipelines.  Shows the accuracy-metric side of
SLAed validation and the parallel-composition histograms.

Run:  python examples/criteo_classification.py   (~1-2 minutes)
"""

import numpy as np

from repro.core import (
    AdaptiveConfig,
    DPAccuracyValidator,
    HistogramPipeline,
    Sage,
    TrainingPipeline,
)
from repro.data import CriteoGenerator
from repro.data.criteo import CRITEO_CARDINALITIES
from repro.experiments.configs import CRITEO_LG
from repro.ml import accuracy


def main():
    source = CriteoGenerator(points_per_hour=16_000)
    sage = Sage(source, epsilon_global=1.0, delta_global=1e-6, seed=5)

    classifier = TrainingPipeline(
        name="click-lg",
        trainer_fn=CRITEO_LG.trainer_fn(),
        validator=DPAccuracyValidator(target=0.75, confidence=0.95),
        metric="accuracy",
    )
    sage.submit(classifier, AdaptiveConfig())
    for feature in (0, 4):  # two of the 26 Counts pipelines
        sage.submit(
            HistogramPipeline(
                name=f"counts-cat{feature}",
                key_column=f"cat_{feature}",
                nkeys=CRITEO_CARDINALITIES[feature],
                target=0.05,
            ),
            AdaptiveConfig(delta=0.0),
        )

    print("running the platform ...")
    sage.run_until_quiet(max_hours=100)

    for entry in sage.pipelines:
        print(f"{entry.name:>14}: {entry.status:>9}, "
              f"{len(entry.session.attempts)} attempts, "
              f"spent {entry.session.total_spent}")

    bundle = sage.store.latest("click-lg")
    if bundle is not None:
        heldout = source.generate(30_000, np.random.default_rng(42))
        labels = (bundle.model.predict(heldout.X) >= 0.5).astype(float)
        acc = accuracy(heldout.y, labels)
        print(f"\nclick-lg held-out accuracy: {acc:.4f} "
              f"(target 0.75, majority class 0.743)")

    hist = sage.store.latest("counts-cat0")
    if hist is not None:
        top = np.argsort(hist.model)[::-1][:3]
        print("counts-cat0 top DP frequencies:",
              ", ".join(f"cat {i}: {hist.model[i]:.3f}" for i in top))

    print(f"\nstream loss bound: {sage.access.stream_loss_bound()}")


if __name__ == "__main__":
    main()
