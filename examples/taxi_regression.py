"""The paper's Taxi workload: models and statistics sharing one stream.

Reproduces the §3.1 scenario end-to-end: an AdaSSP linear regression, a
DP-SGD neural network, and an hourly average-speed statistic all train from
the same sensitive stream.  Sage's allocator divides each new block's budget
among the waiting pipelines, and block composition keeps the *stream-wide*
guarantee at (1.0, 1e-6)-DP no matter how many models ship.

Also demonstrates Listing 1's ``dp_group_by_mean`` featurization inside a
preprocessing_fn.

Run:  python examples/taxi_regression.py   (~1-2 minutes)
"""

import numpy as np

from repro.core import (
    AdaptiveConfig,
    DPLossValidator,
    Sage,
    StatisticPipeline,
    TrainingPipeline,
)
from repro.dp import dp_group_by_mean
from repro.data import TaxiGenerator
from repro.experiments.configs import TAXI_LR, TAXI_NN
from repro.ml import mse


def preprocessing_fn(batch, epsilon, rng):
    """Listing 1: append the DP hour-of-day mean speed as a feature."""
    if epsilon > 0:
        hour_speed = dp_group_by_mean(
            batch.extras["hour_of_day"], batch.extras["speed_kmh"],
            nkeys=24, epsilon=epsilon, value_range=60.0, rng=rng,
        )
        speed_feature = hour_speed[batch.extras["hour_of_day"]] / 60.0
        X = np.hstack([batch.X, speed_feature[:, None]])
    else:
        X = batch.X
    return X, batch.y, {"hour_of_day_speed": epsilon > 0}


def main():
    source = TaxiGenerator(points_per_hour=8_000)
    sage = Sage(source, epsilon_global=1.0, delta_global=1e-6, seed=11)

    # loss_bound=0.1: the developer-declared per-example loss clip (B in
    # Listing 2); tighter than the worst case, so validation resolves fast.
    lr = TrainingPipeline(
        name="duration-lr",
        trainer_fn=TAXI_LR.trainer_fn(),
        validator=DPLossValidator(target=0.0065, loss_bound=0.1),
        metric="mse",
        preprocessing_fn=preprocessing_fn,
        erm_fn=TAXI_LR.erm_fn(),
    )
    nn = TrainingPipeline(
        name="duration-nn",
        trainer_fn=TAXI_NN.trainer_fn(),
        validator=DPLossValidator(target=0.0065, loss_bound=0.1),
        metric="mse",
    )
    speed = StatisticPipeline(
        name="avg-speed-hourly",
        key_column="hour_of_day",
        value_column="speed_kmh",
        nkeys=24,
        value_range=60.0,
        target=7.5,  # km/h, a Table 1 target
    )

    sage.submit(lr, AdaptiveConfig())
    sage.submit(nn, AdaptiveConfig())
    sage.submit(speed, AdaptiveConfig(delta=0.0))

    print("running the platform ...")
    sage.run_until_quiet(max_hours=120)

    heldout = source.generate(30_000, np.random.default_rng(321))
    print(f"\n{'pipeline':>18} {'status':>10} {'attempts':>9} {'released':>9}")
    for entry in sage.pipelines:
        released = (
            f"h{entry.release_time_hours:.0f}" if entry.release_time_hours else "-"
        )
        print(
            f"{entry.name:>18} {entry.status:>10} "
            f"{len(entry.session.attempts):>9} {released:>9}"
        )

    for name in ("duration-lr", "duration-nn"):
        bundle = sage.store.latest(name)
        if bundle is not None:
            if sage.pipeline_named(name).pipeline.preprocessing_fn is not None:
                # The LR consumed an extra DP feature; rebuild it for eval.
                X, y, _ = preprocessing_fn(heldout, 0.1, np.random.default_rng(5))
            else:
                X, y = heldout.X, heldout.y
            errors = (y - bundle.model.predict(X)) ** 2
            # The SLA is on the B-clipped loss (Listing 2 clips per-example
            # losses into [0, B]); raw MSE additionally counts rare large
            # errors beyond the declared clip.
            clipped = float(np.mean(np.clip(errors, 0.0, 0.1)))
            print(f"{name}: held-out clipped loss {clipped:.5f} "
                  f"(SLA target 0.0065), raw MSE {float(np.mean(errors)):.5f}")
    speed_bundle = sage.store.latest("avg-speed-hourly")
    if speed_bundle is not None:
        print(f"avg-speed-hourly: released 24 DP means, e.g. 8am = "
              f"{speed_bundle.model[8]:.1f} km/h (rush), 3am = "
              f"{speed_bundle.model[3]:.1f} km/h")

    print(f"\nstream loss bound: {sage.access.stream_loss_bound()} "
          f"(policy: (1.0, 1e-6))")


if __name__ == "__main__":
    main()
