"""Micro-benchmarks -- platform-overhead hot paths.

These are true throughput benchmarks (many rounds), unlike the experiment
regenerators: mechanism draws, RDP accounting, block-accountant charging,
one DP-SGD step with ghost clipping vs. materialized per-example gradients.
"""

import numpy as np

from repro.core.accountant import BlockAccountant
from repro.dp.budget import PrivacyBudget
from repro.dp.mechanisms import laplace_noise, make_rng
from repro.dp.queries import dp_group_by_mean
from repro.dp.rdp import calibrate_sigma, compute_epsilon
from repro.ml.dpsgd import clipped_noisy_mean_gradients
from repro.ml.neural import MLPModel


def bench_laplace_vector(benchmark):
    rng = make_rng(0)
    benchmark(laplace_noise, rng, 1.0, 10_000)


def bench_rdp_epsilon(benchmark):
    benchmark(compute_epsilon, 0.01, 1.2, 1_000, 1e-6)


def bench_sigma_calibration(benchmark):
    benchmark(calibrate_sigma, 0.02, 500, 1.0, 1e-6)


def bench_accountant_charge(benchmark):
    def charge_round():
        accountant = BlockAccountant(1.0, 1e-6)
        accountant.register_blocks(range(50))
        budget = PrivacyBudget(0.01, 1e-9)
        for start in range(0, 40):
            accountant.charge(list(range(start, start + 10)), budget)
        return accountant

    benchmark(charge_round)


def bench_group_by_mean(benchmark):
    rng = make_rng(1)
    keys = rng.integers(0, 24, size=100_000)
    values = rng.uniform(0, 60, size=100_000)
    benchmark(dp_group_by_mean, keys, values, 24, 1.0, 60.0, rng)


def _dpsgd_step_inputs(hidden):
    rng = make_rng(2)
    model = MLPModel(hidden, task="regression")
    X = rng.normal(size=(256, 61))
    y = rng.normal(size=256)
    params = model.init_params(61, rng)
    return model, params, X, y, rng


def bench_dpsgd_step_ghost(benchmark):
    model, params, X, y, rng = _dpsgd_step_inputs((64, 32))
    benchmark(
        clipped_noisy_mean_gradients, model, params, X, y, 1.0, 1.1, rng
    )


def bench_dpsgd_step_materialized(benchmark):
    """The pre-ghost-clipping path (kept for comparison via per-example grads)."""
    model, params, X, y, rng = _dpsgd_step_inputs((64, 32))

    def step():
        from repro.ml.base import per_example_sq_norms

        losses, grads = model.per_example_gradients(params, X, y)
        norms = np.sqrt(np.maximum(per_example_sq_norms(grads), 1e-64))
        factors = np.minimum(1.0, 1.0 / norms)
        return [
            (g * factors.reshape((256,) + (1,) * (g.ndim - 1))).sum(axis=0)
            for g in grads
        ]

    benchmark(step)
