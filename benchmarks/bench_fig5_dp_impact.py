"""Fig. 5 -- impact of DP on training-pipeline quality.

Regenerates all four panels: held-out MSE (Taxi LR/NN) and accuracy (Criteo
LG/NN) versus training-set size, for the non-private model, the large DP
budget (eps = 1), and the small DP budget of Table 1.

Expected shape (paper): DP hurts at small n, the gap narrows as data grows;
the NP curve is flat-ish at the achievable floor; the small-eps curve sits
well above the large-eps curve.
"""

from conftest import write_result

from repro.experiments import fig5_series, format_fig5


def _render(benchmark, table, title, metric, filename):
    series = benchmark.pedantic(fig5_series, args=(table,), rounds=1, iterations=1)
    text = format_fig5(title, series, metric)
    write_result(filename, text)
    modes = set(series)
    assert {"np", "dp-large", "dp-small"} <= modes
    return series


def bench_fig5a_taxi_lr(benchmark, lr_runs):
    series = _render(
        benchmark, lr_runs, "Fig 5a: Taxi LR MSE vs samples", "mse", "fig5a_taxi_lr.txt"
    )
    # Shape assertions: DP improves with data; NP below DP at small n.
    dp = dict(series["dp-large"])
    ns = sorted(dp)
    assert dp[ns[-1]] < dp[ns[0]]
    np_curve = dict(series["np"])
    assert np_curve[ns[0]] < dp[ns[0]]


def bench_fig5b_taxi_nn(benchmark, taxi_nn_runs):
    series = _render(
        benchmark, taxi_nn_runs, "Fig 5b: Taxi NN MSE vs samples", "mse", "fig5b_taxi_nn.txt"
    )
    dp = dict(series["dp-large"])
    ns = sorted(dp)
    assert dp[ns[-1]] < dp[ns[0]]


def bench_fig5c_criteo_lg(benchmark, criteo_lg_runs):
    series = _render(
        benchmark, criteo_lg_runs,
        "Fig 5c: Criteo LG accuracy vs samples", "accuracy", "fig5c_criteo_lg.txt",
    )
    dp = dict(series["dp-large"])
    ns = sorted(dp)
    assert dp[ns[-1] ] > dp[ns[0]] - 1e-3  # accuracy non-degrading with data


def bench_fig5d_criteo_nn(benchmark, criteo_nn_runs):
    _render(
        benchmark, criteo_nn_runs,
        "Fig 5d: Criteo NN accuracy vs samples", "accuracy", "fig5d_criteo_nn.txt",
    )
