"""Profiled contention hour: where the wall clock of a heavy hour goes.

PR 10's acceptance bench.  One contention-shaped hour (every pipeline
scanning a long stream and charging out of the freshly granted free
pool) is driven with a :class:`~repro.obs.WallProfiler` riding alongside
the deterministic tracer, at shard counts 1 / 4 / 8, and three claims
are checked:

* **Parity**: the profiled drive reproduces the bare drive's state
  digest byte for byte -- profiling observes, never participates.
* **Coverage**: the per-phase wall-clock breakdown under the hour's
  root span accounts for at least ``--assert-coverage`` of the measured
  hour (CI gates 0.9: the instrumented phases must explain >= 90% of
  where the time went, or the profile is lying by omission).
* **Attribution**: ``shard.validate`` decomposes per shard -- every
  shard of the sharded accountant shows up with a positive measured
  wall, so a skewed shard is visible, not averaged away.

Run as a script
(``PYTHONPATH=src python benchmarks/bench_profile_breakdown.py``).
"""

import argparse
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from benchjson import write_bench_json, write_bench_report
from repro.core import durability
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.core.sharding import sharded_accountant_factory
from repro.obs import Telemetry, WallProfiler
from repro.obs.analyze import hour_coverage, phase_breakdown
from repro.workload.oracle import CountStreamSource, OraclePipeline

DEFAULT_PIPELINES = 200
DEFAULT_BLOCKS = 5_000
SHARD_COUNTS = (1, 4, 8)
DEFAULT_WORKERS = min(8, max(2, os.cpu_count() or 2))


def build_contention_platform(n_pipelines, n_blocks, n_shards, workers, telemetry=None):
    """A stream ``n_blocks`` hours old with ``n_pipelines`` sessions
    submitted but not yet granted: the *next* hour is the contention
    hour, where the free pool lands and every session scans the whole
    stream and charges.  The tiny epsilon keeps every attempt affordable
    (so the hour exercises ``charge_many`` and the sharded validate
    path) while the unreachable target keeps every session mid-flight."""
    factory = sharded_accountant_factory(n_shards) if n_shards else None
    sage = Sage(
        CountStreamSource(1000, scale=1000),
        seed=0,
        accountant_factory=factory,
        propose_workers=workers,
        telemetry=telemetry,
    )
    sage.advance(float(n_blocks))  # blocks land with nobody waiting
    config = AdaptiveConfig(epsilon_start=0.001, epsilon_floor=0.001, max_attempts=4)
    for i in range(n_pipelines):
        sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=1e12), config)
    return sage


def profile_contention_hour(n_pipelines, n_blocks, n_shards, workers):
    """Drive the contention hour profiled and bare; return the measured
    wall (s), the profiler, the hour coverage, and the per-shard
    ``shard.validate`` walls (us)."""
    telemetry = Telemetry(profiler=WallProfiler())
    profiled = build_contention_platform(
        n_pipelines, n_blocks, n_shards, workers, telemetry=telemetry
    )
    bare = build_contention_platform(n_pipelines, n_blocks, n_shards, workers)
    profiler = telemetry.profiler
    # Drop the ingest warmup so every remaining span belongs to the one
    # contention hour the coverage claim is about.
    profiler.spans.clear()
    profiler.events.clear()

    start = time.perf_counter()
    profiled.advance(1.0)
    wall_s = time.perf_counter() - start
    bare.advance(1.0)

    if durability.state_digest(profiled) != durability.state_digest(bare):
        raise AssertionError(
            f"profiled drive diverged from the bare drive at "
            f"{n_shards} shards -- profiling participated in the simulation"
        )
    profiled.close()
    bare.close()

    coverage = hour_coverage(profiler)
    shard_walls = {
        span.args["shard"]: span.duration
        for span in profiler.find_spans("shard.validate")
    }
    expected = set(range(n_shards)) if n_shards else set()
    if set(shard_walls) != expected:
        raise AssertionError(
            f"shard.validate decomposed over shards {sorted(shard_walls)}, "
            f"expected {sorted(expected)}"
        )
    if any(wall <= 0.0 for wall in shard_walls.values()):
        raise AssertionError(
            f"non-positive shard.validate wall at {n_shards} shards: "
            f"{shard_walls}"
        )
    return wall_s, profiler, coverage, shard_walls


def run(n_pipelines, n_blocks, workers, assert_coverage=0.0):
    cases = []
    notes = []
    breakdown = None
    for n_shards in SHARD_COUNTS:
        wall_s, profiler, coverage, shard_walls = profile_contention_hour(
            n_pipelines, n_blocks, n_shards, workers
        )
        hour = profiler.find_spans("advance.hour")[0]
        instrumented_us = hour.duration * coverage
        cases.append(
            write_bench_json(
                f"profile_breakdown_s{n_shards}",
                {
                    "pipelines": n_pipelines,
                    "blocks": n_blocks,
                    "shards": n_shards,
                    "workers": workers,
                    "hour_coverage": round(coverage, 4),
                    "shard_validate_ms": {
                        str(shard): round(wall / 1e3, 3)
                        for shard, wall in sorted(shard_walls.items())
                    },
                },
                wall_s * 1e3,
                instrumented_us / 1e3,
                bench="profile_breakdown",
            )
        )
        notes.append(
            f"shards={n_shards}: coverage {coverage:.1%}, shard.validate "
            + " ".join(
                f"s{shard}={wall / 1e3:.2f}ms"
                for shard, wall in sorted(shard_walls.items())
            )
        )
        if n_shards == SHARD_COUNTS[-1]:
            breakdown = phase_breakdown(profiler)
        if assert_coverage and coverage < assert_coverage:
            raise AssertionError(
                f"instrumented phases cover only {coverage:.1%} of the "
                f"measured hour at {n_shards} shards, below the required "
                f"{assert_coverage:.0%}"
            )
    notes.append(
        "speedup column reads as measured-hour / instrumented-phase wall "
        "(1.0x would be full coverage)"
    )
    for row in breakdown[:6]:
        notes.append(
            f"  {row.name:<24} self {row.self_time / 1e3:>9.2f}ms  "
            f"share {row.share:>6.1%}"
        )
    return write_bench_report(
        "profile_breakdown",
        "profiled contention hour: wall-clock phase breakdown "
        f"({n_pipelines} pipelines x {n_blocks} blocks, {workers} workers)",
        cases,
        columns=("measured", "instrumented"),
        notes=notes,
    )


def test_profile_breakdown_smoke():
    """CI smoke: parity, per-shard attribution, and a loose coverage
    floor at reduced scale (the 90% acceptance gate runs at full scale,
    where the instrumented phases dominate even harder)."""
    wall_s, profiler, coverage, shard_walls = profile_contention_hour(
        60, 1_500, 4, DEFAULT_WORKERS
    )
    assert sorted(shard_walls) == [0, 1, 2, 3]
    assert coverage >= 0.6, f"hour coverage only {coverage:.1%}"
    hour = profiler.find_spans("advance.hour")[0]
    assert hour.duration <= wall_s * 1e6 * 1.5


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pipelines", type=int, default=DEFAULT_PIPELINES)
    parser.add_argument("--blocks", type=int, default=DEFAULT_BLOCKS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--assert-coverage",
        type=float,
        default=0.0,
        help="fail unless the per-phase breakdown explains this fraction "
        "of the measured hour at every shard count",
    )
    args = parser.parse_args()
    print(
        run(
            args.pipelines,
            args.blocks,
            args.workers,
            assert_coverage=args.assert_coverage,
        )
    )


if __name__ == "__main__":
    main()
