"""Machine-readable benchmark results.

Every perf benchmark writes, alongside its rendered text table, one JSON
document per measured case under ``results/bench_<name>.json`` with the
fixed schema::

    {"name": ..., "params": {...}, "scalar_ms": ..., "vectorized_ms": ...,
     "speedup": ...}

so the perf trajectory is diffable and trackable across PRs.
"""

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_text_atomic(path: Path, text: str) -> None:
    """Write via a sibling temp file and one ``os.replace``: a benchmark
    killed mid-write leaves the previous result intact, never a torn
    half-JSON that later diffs or parsers choke on."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def write_bench_json(
    name: str, params: dict, scalar_ms: float, vectorized_ms: float
) -> Path:
    """Persist one benchmark case; returns the written path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": name,
        "params": params,
        "scalar_ms": scalar_ms,
        "vectorized_ms": vectorized_ms,
        "speedup": (scalar_ms / vectorized_ms) if vectorized_ms > 0 else None,
    }
    path = RESULTS_DIR / f"bench_{name}.json"
    write_text_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
