"""Machine-readable benchmark results + the shared result renderer.

Every perf benchmark writes, alongside its rendered text table, one JSON
document per measured case under ``results/bench_<name>.json`` with the
fixed schema::

    {"name": ..., "bench": ..., "params": {...}, "scalar_ms": ...,
     "vectorized_ms": ..., "speedup": ..., "meta": {"git_sha": ...,
     "timestamp": ..., "host": ..., "python": ..., "numpy": ...}}

and appends the same payload to ``results/perf_history.jsonl`` -- the
perf trajectory ``repro perf-report`` renders and CI's
``perf-regression`` job gates (see :mod:`repro.obs.perfdb`).  ``params``
is validated JSON-serializable up front, so a bad case fails loudly
before any timing work instead of torn-writing a half-result.

The text tables under ``results/bench_*.txt`` all come from one renderer
(:func:`render_bench_table` / :func:`write_bench_report`) fed by the
JSON payloads, so every bench reports in the same shape and the tables
never drift from the machine-readable results.
"""

import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs import perfdb

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_text_atomic(path: Path, text: str) -> None:
    """Write via a sibling temp file and one ``os.replace``: a benchmark
    killed mid-write leaves the previous result intact, never a torn
    half-JSON that later diffs or parsers choke on."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def write_bench_json(
    name: str,
    params: dict,
    scalar_ms: float,
    vectorized_ms: float,
    bench: str = "",
) -> dict:
    """Persist one benchmark case and append it to the perf history.

    Returns the written payload (so benches can hand their cases to
    :func:`write_bench_report`).  ``bench`` names the owning benchmark
    for the trajectory's per-(bench, case) keying; empty means the case
    name already carries it.
    """
    try:
        params = json.loads(json.dumps(params))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"bench case {name!r}: params must be JSON-serializable "
            f"({exc})"
        ) from None
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": name,
        "bench": bench,
        "params": params,
        "scalar_ms": scalar_ms,
        "vectorized_ms": vectorized_ms,
        "speedup": (scalar_ms / vectorized_ms) if vectorized_ms > 0 else None,
        "meta": perfdb.run_metadata(),
    }
    path = RESULTS_DIR / f"bench_{name}.json"
    write_text_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    perfdb.append_history(payload)
    return payload


def render_bench_table(
    title: str,
    cases,
    columns=("scalar", "vectorized"),
    notes=(),
) -> str:
    """One fixed-shape text table over ``write_bench_json`` payloads.

    ``columns`` labels the two timing columns (benches measure different
    pairs: per-ledger vs vectorized, bare vs instrumented, volatile vs
    durable); ``notes`` appends free-form context lines under the table.
    """
    name_width = max([24] + [len(case["name"]) for case in cases])
    slow_label, fast_label = columns
    lines = [
        title,
        f"{'case':<{name_width}}  {slow_label:>14}  {fast_label:>14}  "
        f"{'speedup':>8}",
    ]
    for case in cases:
        speedup = case.get("speedup")
        rendered = f"{speedup:>7.1f}x" if speedup is not None else "      --"
        lines.append(
            f"{case['name']:<{name_width}}  "
            f"{case['scalar_ms']:>12.2f}ms  "
            f"{case['vectorized_ms']:>12.2f}ms  {rendered}"
        )
    lines.extend(notes)
    return "\n".join(lines)


def write_bench_report(
    bench: str,
    title: str,
    cases,
    columns=("scalar", "vectorized"),
    notes=(),
) -> str:
    """Render the shared table and write ``results/bench_<bench>.txt``
    atomically; returns the table for the bench to print."""
    table = render_bench_table(title, cases, columns=columns, notes=notes)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_text_atomic(RESULTS_DIR / f"bench_{bench}.txt", table + "\n")
    return table
