"""Fig. 8 -- average model release time under load.

Both panels (Taxi at 16K points/hour; Criteo at 267K/hour, count-scaled),
four strategies each: Streaming Composition, Query Composition (prior
work), Block/Aggressive, and Block/Conserve (Sage).

Expected shape: the prior-work baselines blow past the chart from moderate
arrival rates while both block strategies keep releasing within a day at
0.7 models/hour.

The block strategies drive the platform's propose/settle protocol
(``batched_advance=True``): each simulated hour's charges commit through
one batched ``request_many`` -- trajectories are float-identical to the
sequential per-proposal path (see ``tests/core/test_protocol.py``).
"""

from conftest import FULL_SCALE, write_result

from repro.experiments import format_fig8
from repro.workload.arrivals import PowerLawComplexity
from repro.workload.simulator import WorkloadConfig, WorkloadReport, WorkloadSimulator

_RATES = (0.1, 0.3, 0.5, 0.7) if FULL_SCALE else (0.1, 0.3, 0.7)
_HORIZON = 500.0 if FULL_SCALE else 300.0
_STRATEGIES = ("streaming", "query", "block-aggressive", "block-conserve")


def _sweep(points_per_hour, complexity):
    reports = {}
    for strategy in _STRATEGIES:
        reports[strategy] = {}
        for i, rate in enumerate(_RATES):
            cfg = WorkloadConfig(
                strategy=strategy,
                arrival_rate=rate,
                horizon_hours=_HORIZON,
                points_per_hour=points_per_hour,
                complexity=complexity,
                batched_advance=True,
            )
            reports[strategy][rate] = WorkloadSimulator(cfg, seed=3 + i).run()
    return reports


def _assert_shape(reports):
    heavy = max(_RATES)
    block = reports["block-conserve"][heavy]
    streaming = reports["streaming"][heavy]
    query = reports["query"][heavy]
    # Sage releases the bulk of the workload; baselines collapse under load.
    assert block.release_fraction > streaming.release_fraction
    assert block.release_fraction > query.release_fraction
    assert block.avg_release_time < streaming.avg_release_time
    # Sage sustains the top rate within a day-or-two average (the paper's
    # "release them within a day" at its block/complexity ratio).
    assert block.avg_release_time < 72.0


def bench_fig8a_taxi(benchmark):
    reports = benchmark.pedantic(
        _sweep,
        args=(16_000, PowerLawComplexity(n_min=2_000, n_max=1_000_000)),
        rounds=1,
        iterations=1,
    )
    write_result(
        "fig8a_taxi.txt",
        format_fig8("Fig 8a: Taxi avg release time (h) vs arrival rate", reports),
    )
    _assert_shape(reports)


def bench_fig8b_criteo(benchmark):
    reports = benchmark.pedantic(
        _sweep,
        args=(267_000, PowerLawComplexity(n_min=33_000, n_max=16_000_000)),
        rounds=1,
        iterations=1,
    )
    write_result(
        "fig8b_criteo.txt",
        format_fig8("Fig 8b: Criteo avg release time (h) vs arrival rate", reports),
    )
    _assert_shape(reports)
