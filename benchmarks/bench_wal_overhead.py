"""Durability tax: the write-ahead charge log vs the volatile drive.

Two questions about ``Sage(wal_dir=...)``:

* **Parity first**: the durable drive must reproduce the volatile drive's
  simulation byte for byte (per-hour state digests), and a platform
  rebuilt from the WAL alone -- and again from the latest snapshot plus
  the log tail -- must land on the same digest.  Any drift fails the
  bench before a single timing is taken.
* **Overhead**: wall-clock of the hourly drive with the log on (frame
  encode + CRC + fsync per hour) over the log off, reported as a ratio.
  ``--assert-max-overhead`` gates it in CI.

Run as a script (``PYTHONPATH=src python benchmarks/bench_wal_overhead.py``).
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from benchjson import write_bench_json, write_bench_report
from repro.core import durability
from repro.errors import RecoveryError
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.workload.oracle import CountStreamSource, OraclePipeline

DEFAULT_HOURS = 24
DEFAULT_PIPELINES = 6


def _build(wal_dir=None, snapshot_every=0):
    return Sage(
        CountStreamSource(4000, scale=1000),
        seed=5,
        wal_dir=wal_dir,
        snapshot_every=snapshot_every,
    )


def _pipes(n):
    # Doubling targets: early pipelines terminate inside the bench window,
    # later ones stay mid-session, so hours mix charges and redistributions.
    return [
        (
            OraclePipeline(name=f"p{i}", n_at_eps1=3_000.0 * (2.0 ** i)),
            AdaptiveConfig(max_attempts=16),
        )
        for i in range(n)
    ]


def _drive(sage, n_pipelines, hours):
    """Submit the workload, advance ``hours``, return (per-hour digests,
    total advance seconds)."""
    for pipeline, config in _pipes(n_pipelines):
        sage.submit(pipeline, config)
    digests = []
    elapsed = 0.0
    for _ in range(hours):
        start = time.perf_counter()
        sage.advance(1.0)
        elapsed += time.perf_counter() - start
        digests.append(durability.state_digest(sage))
    return digests, elapsed


def bench_overhead(hours, n_pipelines, snapshot_every):
    volatile = _build()
    volatile_digests, t_off = _drive(volatile, n_pipelines, hours)
    volatile.close()

    with tempfile.TemporaryDirectory(prefix="wal_bench_") as tmp:
        wal_dir = Path(tmp)
        durable = _build(wal_dir=wal_dir, snapshot_every=snapshot_every)
        durable_digests, t_on = _drive(durable, n_pipelines, hours)
        durable.close()
        if durable_digests != volatile_digests:
            raise AssertionError(
                "durable drive diverged from the volatile drive "
                f"(first mismatch at hour "
                f"{next(i for i, (a, b) in enumerate(zip(durable_digests, volatile_digests)) if a != b)})"
            )
        # Recovery parity: snapshot + log tail (as configured) ...
        recovered = _build(wal_dir=wal_dir, snapshot_every=snapshot_every)
        report = recovered.recover(_pipes(n_pipelines))
        if report.hours_committed != hours:
            raise AssertionError(
                f"recovery rebuilt {report.hours_committed} hours, expected {hours}"
            )
        if durability.state_digest(recovered) != volatile_digests[-1]:
            raise AssertionError("recovered state diverged from the live run")
        recovered.close()
        # ... and the compaction contract: each snapshot write compacts
        # the WAL to the oldest *retained* snapshot's hour, so with every
        # snapshot deleted the early hours are gone on purpose and
        # recovery must refuse with a typed error, not rebuild silently
        # from a gapped log.
        if snapshot_every and durability.SnapshotStore(wal_dir).snapshot_paths():
            for snap in durability.SnapshotStore(wal_dir).snapshot_paths():
                snap.unlink()
            gapped = _build(wal_dir=wal_dir)
            try:
                gapped.recover(_pipes(n_pipelines))
            except RecoveryError:
                pass
            else:
                raise AssertionError(
                    "recovery from a compacted WAL with no snapshots must "
                    "raise RecoveryError"
                )
            finally:
                gapped.close()

    # The WAL alone still rebuilds the whole run when nothing compacts
    # it: a snapshot-free drive keeps every hour in the log.
    with tempfile.TemporaryDirectory(prefix="wal_bench_replay_") as tmp:
        wal_dir = Path(tmp)
        durable = _build(wal_dir=wal_dir)
        durable_digests, _ = _drive(durable, n_pipelines, hours)
        durable.close()
        if durable_digests != volatile_digests:
            raise AssertionError("snapshot-free durable drive diverged")
        replayed = _build(wal_dir=wal_dir)
        report = replayed.recover(_pipes(n_pipelines))
        if report.snapshot_hour is not None or report.replayed_hours != hours:
            raise AssertionError(
                f"expected a pure {hours}-hour WAL replay, got {report.describe()}"
            )
        if durability.state_digest(replayed) != volatile_digests[-1]:
            raise AssertionError("pure WAL replay diverged from the live run")
        replayed.close()

    return t_off, t_on, t_on / t_off


def run(hours, n_pipelines, snapshot_every, assert_max_overhead=0.0):
    t_off, t_on, overhead = bench_overhead(hours, n_pipelines, snapshot_every)
    case = write_bench_json(
        "wal_overhead",
        {"hours": hours, "pipelines": n_pipelines, "snapshot_every": snapshot_every},
        t_on * 1e3,
        t_off * 1e3,
        bench="wal_overhead",
    )
    table = write_bench_report(
        "wal_overhead",
        f"WAL overhead: {hours} hours x {n_pipelines} pipelines "
        f"(snapshot every {snapshot_every or 'never'})",
        [case],
        columns=("durable", "volatile"),
        notes=[
            "speedup column reads as the durable/volatile overhead ratio "
            f"({t_on / hours * 1e3:.2f}ms vs {t_off / hours * 1e3:.2f}ms per hour)",
            "parity: durable==volatile per hour; snapshot+tail and pure-WAL "
            "recovery both reproduce the final digest",
        ],
    )
    if assert_max_overhead and overhead > assert_max_overhead:
        raise AssertionError(
            f"durable drive costs {overhead:.2f}x the volatile drive, over "
            f"the allowed {assert_max_overhead}x"
        )
    return table


def test_wal_overhead_smoke():
    """CI smoke: parity plus a loose overhead ceiling.  The oracle hours
    here are sub-millisecond, so the ~1ms framed fsync dominates the
    ratio; on any real hour (training attempts) it vanishes.  The gate
    exists to catch pathological regressions (e.g. re-pickling the whole
    platform per hour), not to pin the fsync cost."""
    t_off, t_on, overhead = bench_overhead(12, 4, snapshot_every=4)
    assert overhead <= 5.0, f"{overhead:.2f}x (off {t_off:.4f}s on {t_on:.4f}s)"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=DEFAULT_HOURS)
    parser.add_argument("--pipelines", type=int, default=DEFAULT_PIPELINES)
    parser.add_argument("--snapshot-every", type=int, default=8)
    parser.add_argument(
        "--assert-max-overhead",
        type=float,
        default=0.0,
        help="fail if the durable drive costs more than this factor of the "
        "volatile drive",
    )
    args = parser.parse_args()
    print(
        run(
            args.hours,
            args.pipelines,
            args.snapshot_every,
            assert_max_overhead=args.assert_max_overhead,
        )
    )


if __name__ == "__main__":
    main()
