"""RDP moments-accountant throughput: vectorized expansion vs per-order loop.

DP-SGD pipelines call ``calibrate_sigma`` on every training attempt, and
each bisection step used to evaluate the sampled-Gaussian RDP with one
Python loop per order (up to ``order + 1`` terms each).  The vectorized
accountant computes all orders in one flat log-space binomial expansion
with cached ``lgamma`` tables, and memoizes per-step RDP vectors across
calls.  This bench times ``calibrate_sigma`` (cache cleared per round, so
the figure is pure vectorization) against a faithful reimplementation of
the seed's scalar path, and always asserts parity of both the per-order
RDP values (<= 1e-10 relative, 1e-14 absolute floor) and the calibrated
sigmas.

Run as a script (``PYTHONPATH=src python benchmarks/bench_rdp_accountant.py``);
``--assert-speedup`` turns it into the CI perf + parity gate.
"""

import argparse
import math
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from benchjson import write_bench_json, write_bench_report
from repro.dp.rdp import (
    DEFAULT_ORDERS,
    calibrate_sigma,
    clear_rdp_cache,
    sampled_gaussian_rdp,
    sampled_gaussian_rdp_orders,
)

CASES = ((0.01, 1_000, 1.0), (0.02, 500, 0.5), (0.005, 8_000, 2.0))
DELTA = 1e-6


# ----------------------------------------------------------------------
# The seed's scalar path, preserved as the baseline under test.
# ----------------------------------------------------------------------
def scalar_compute_epsilon(q, sigma, steps, delta, orders=DEFAULT_ORDERS):
    rdp = steps * np.array([sampled_gaussian_rdp(q, sigma, a) for a in orders])
    best = math.inf
    for value, alpha in zip(rdp, orders):
        eps = (
            value
            + math.log((alpha - 1.0) / alpha)
            - (math.log(delta) + math.log(alpha)) / (alpha - 1.0)
        )
        best = min(best, eps)
    return max(0.0, best)


def scalar_calibrate_sigma(q, steps, epsilon, delta, sigma_min=0.3, sigma_max=2000.0, tol=1e-3):
    if scalar_compute_epsilon(q, sigma_max, steps, delta) > epsilon:
        raise AssertionError("unreachable target in benchmark case")
    if scalar_compute_epsilon(q, sigma_min, steps, delta) <= epsilon:
        return sigma_min
    lo, hi = sigma_min, sigma_max
    while hi - lo > tol * lo:
        mid = math.sqrt(lo * hi)
        if scalar_compute_epsilon(q, mid, steps, delta) > epsilon:
            lo = mid
        else:
            hi = mid
    return hi


def check_parity():
    """Vectorized expansion and calibration must match the scalar path."""
    for q in (0.0, 1e-4, 0.001, 0.01, 0.1, 0.5, 1.0):
        for sigma in (0.35, 1.1, 5.0, 80.0, 500.0):
            vec = sampled_gaussian_rdp_orders(q, sigma, DEFAULT_ORDERS)
            ref = np.array(
                [sampled_gaussian_rdp(q, sigma, a) for a in DEFAULT_ORDERS]
            )
            bound = np.maximum(1e-10 * np.abs(ref), 1e-14)
            if not (np.abs(vec - ref) <= bound).all():
                worst = float(np.max(np.abs(vec - ref)))
                raise AssertionError(
                    f"vectorized RDP diverged from scalar at q={q}, "
                    f"sigma={sigma}: worst abs diff {worst:.3e}"
                )
    for q, steps, epsilon in CASES:
        ref = scalar_calibrate_sigma(q, steps, epsilon, DELTA)
        got = calibrate_sigma(q, steps, epsilon, DELTA)
        if not math.isclose(ref, got, rel_tol=1e-9):
            raise AssertionError(
                f"calibrated sigma diverged: scalar {ref} vs vectorized {got}"
            )


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_case(q, steps, epsilon, repeats=3):
    t_slow = _best_of(lambda: scalar_calibrate_sigma(q, steps, epsilon, DELTA), repeats)

    def vectorized():
        clear_rdp_cache()  # time cold vectorization, not the memo hits
        calibrate_sigma(q, steps, epsilon, DELTA)

    t_fast = _best_of(vectorized, repeats)
    return t_slow, t_fast, t_slow / t_fast


def run(assert_speedup=0.0):
    check_parity()
    cases = []
    for q, steps, epsilon in CASES:
        t_slow, t_fast, speedup = bench_case(q, steps, epsilon)
        cases.append(
            write_bench_json(
                f"rdp_calibrate_q{q}_T{steps}",
                {"q": q, "steps": steps, "epsilon": epsilon, "delta": DELTA},
                t_slow * 1e3,
                t_fast * 1e3,
                bench="rdp_accountant",
            )
        )
        if assert_speedup and speedup < assert_speedup:
            raise AssertionError(
                f"calibrate_sigma speedup {speedup:.1f}x (q={q} T={steps}) is "
                f"below the required {assert_speedup}x"
            )
    return write_bench_report(
        "rdp_accountant",
        "RDP moments accountant: calibrate_sigma (best of 3, cold cache)",
        cases,
        notes=["parity: vectorized RDP and sigmas match the scalar path"],
    )


def test_rdp_parity_and_speedup():
    """CI smoke: parity must hold and vectorization must win >= 5x."""
    check_parity()
    q, steps, epsilon = CASES[0]
    _, _, speedup = bench_case(q, steps, epsilon)
    assert speedup >= 5.0, f"only {speedup:.1f}x"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless vectorized calibrate_sigma wins by this factor",
    )
    args = parser.parse_args()
    print(run(assert_speedup=args.assert_speedup))


if __name__ == "__main__":
    main()
