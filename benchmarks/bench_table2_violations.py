"""Table 2 -- target-violation rate of ACCEPTed models.

For eta in {0.01, 0.05} and both tasks, walks the privacy-adaptive doubling
schedule until each regime accepts and measures how often the accepted model
misses its target on held-out data.

Expected shape (paper): No SLA violates wildly (0.25-0.38); the uncorrected
DP SLA violates its confidence level; Sage SLA and NP SLA stay below eta.
Also reproduces the §5.1 headline rates in the No SLA column.
"""

from conftest import write_result

from repro.experiments import Regime, format_table2, table2_violation_rates

_TAXI_TARGETS = (0.005, 0.006, 0.007)
_CRITEO_TARGETS = (0.74, 0.75, 0.76)


def _run(benchmark, table, targets, filename, title):
    def compute():
        return {
            eta: table2_violation_rates(
                table, targets=targets, eta=eta, trials_per_cell=25
            )
            for eta in (0.01, 0.05)
        }

    rates_by_eta = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_result(filename, format_table2(title, rates_by_eta))
    return rates_by_eta


def bench_table2_taxi(benchmark, lr_runs):
    rates = _run(
        benchmark, lr_runs, _TAXI_TARGETS,
        "table2_taxi.txt", "Table 2: Taxi (LR) violation rates",
    )
    for eta, row in rates.items():
        sage = row[Regime.SAGE_SLA]
        no_sla = row[Regime.NO_SLA]
        if sage == sage and no_sla == no_sla:  # both defined
            # Sage keeps its confidence promise; vanilla validation does not.
            assert sage <= eta + 0.02
            assert no_sla > sage


def bench_table2_criteo(benchmark, criteo_lg_runs):
    rates = _run(
        benchmark, criteo_lg_runs, _CRITEO_TARGETS,
        "table2_criteo.txt", "Table 2: Criteo (LG) violation rates",
    )
    for eta, row in rates.items():
        sage = row[Regime.SAGE_SLA]
        if sage == sage:
            assert sage <= eta + 0.02
