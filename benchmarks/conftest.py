"""Shared fixtures for the benchmark harness.

Training-run tables are expensive (they train every Table 1 model over a
doubling sample schedule), so they are session-scoped and shared between the
Fig. 5, Fig. 6, and Table 2 benches.  Every bench writes its rendered
table/series to ``results/`` so EXPERIMENTS.md can be regenerated from a
single ``pytest benchmarks/ --benchmark-only`` run.

Scale: set ``REPRO_BENCH_SCALE=full`` for schedules closer to the paper's
(longer runtimes); the default "small" regenerates every shape in minutes.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small") == "full"

# Doubling sample schedules per model family (small | full).
LR_SCHEDULE = (
    (4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000, 512_000)
    if FULL_SCALE
    else (4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000)
)
NN_SCHEDULE = (
    (4_000, 16_000, 64_000, 128_000, 256_000)
    if FULL_SCALE
    else (4_000, 16_000, 64_000, 128_000)
)
SEEDS = (0, 1) if FULL_SCALE else (0,)
LR_SEEDS = (0, 1, 2) if FULL_SCALE else (0, 1)
EVAL_SIZE = 50_000 if FULL_SCALE else 25_000


def write_result(name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    sys.stderr.write("\n" + text + "\n")


@pytest.fixture(scope="session")
def lr_runs():
    from repro.experiments import TAXI_LR, collect_training_runs

    return collect_training_runs(
        TAXI_LR, schedule=LR_SCHEDULE, seeds=LR_SEEDS, eval_size=EVAL_SIZE
    )


@pytest.fixture(scope="session")
def taxi_nn_runs():
    from repro.experiments import TAXI_NN, collect_training_runs

    return collect_training_runs(
        TAXI_NN, schedule=NN_SCHEDULE, seeds=SEEDS, eval_size=EVAL_SIZE
    )


@pytest.fixture(scope="session")
def criteo_lg_runs():
    from repro.experiments import CRITEO_LG, collect_training_runs

    # LG is cheap (linear model, ghost clipping): extend the schedule so the
    # rigorous regimes get enough test data to resolve their targets.
    schedule = NN_SCHEDULE + (512_000,) if FULL_SCALE else NN_SCHEDULE + (256_000,)
    return collect_training_runs(
        CRITEO_LG, schedule=schedule, seeds=SEEDS, eval_size=EVAL_SIZE
    )


@pytest.fixture(scope="session")
def criteo_nn_runs():
    from repro.experiments import CRITEO_NN, collect_training_runs

    return collect_training_runs(
        CRITEO_NN, schedule=NN_SCHEDULE, seeds=SEEDS, eval_size=EVAL_SIZE
    )
