"""Fig. 6 -- samples required to ACCEPT models at each quality target.

Regenerates the four panels comparing validation regimes: No SLA (vanilla),
NP SLA (rigorous non-private), UC DP SLA (uncorrected ablation), and Sage
SLA.  Expected shape (paper): No SLA accepts earliest (unreliably); NP SLA
needs substantially more data; Sage SLA tracks NP SLA with limited extra
cost; hard targets are unreachable at small scale.
"""

from conftest import write_result

from repro.experiments import Regime, fig6_required_samples, format_fig6


def _targets(config, metric):
    # Drop the hardest paper targets that need >1M samples at our scale.
    if metric == "mse":
        return tuple(t for t in config.targets if t >= 0.004)
    return tuple(t for t in config.targets if t <= 0.77)


def _render(benchmark, table, title, filename):
    targets = _targets(table.config, table.config.metric)
    required = benchmark.pedantic(
        fig6_required_samples, args=(table, targets), rounds=1, iterations=1
    )
    write_result(filename, format_fig6(title, required))
    return required, targets


def bench_fig6a_taxi_lr(benchmark, lr_runs):
    required, targets = _render(
        benchmark, lr_runs, "Fig 6a: Taxi LR samples to ACCEPT", "fig6a_taxi_lr.txt"
    )
    # No SLA accepts no later than Sage SLA on every reachable target.
    for t in targets:
        no_sla, sage = required[Regime.NO_SLA][t], required[Regime.SAGE_SLA][t]
        if no_sla is not None and sage is not None:
            assert no_sla <= sage


def bench_fig6b_taxi_nn(benchmark, taxi_nn_runs):
    _render(benchmark, taxi_nn_runs, "Fig 6b: Taxi NN samples to ACCEPT", "fig6b_taxi_nn.txt")


def bench_fig6c_criteo_lg(benchmark, criteo_lg_runs):
    required, targets = _render(
        benchmark, criteo_lg_runs, "Fig 6c: Criteo LG samples to ACCEPT", "fig6c_criteo_lg.txt"
    )
    for t in targets:
        no_sla, sage = required[Regime.NO_SLA][t], required[Regime.SAGE_SLA][t]
        if no_sla is not None and sage is not None:
            assert no_sla <= sage


def bench_fig6d_criteo_nn(benchmark, criteo_nn_runs):
    _render(benchmark, criteo_nn_runs, "Fig 6d: Criteo NN samples to ACCEPT", "fig6d_criteo_nn.txt")
