"""Ablation -- design choices DESIGN.md calls out.

* Basic vs. strong (Rogers-filter) per-block composition: how many small
  queries one block can absorb under each accountant (Theorem 4.3 vs A.2).
* Conserve vs. aggressive budget strategies head-to-head at high load.
* Improved vs. classic RDP-to-DP conversion for DP-SGD budgets.
"""

from conftest import write_result

from repro.core.accountant import BlockAccountant
from repro.core.filters import BasicCompositionFilter, StrongCompositionFilter
from repro.dp.budget import PrivacyBudget
from repro.dp.rdp import DEFAULT_ORDERS, compute_rdp, rdp_to_epsilon
from repro.workload.simulator import WorkloadConfig, WorkloadSimulator


def _queries_absorbed(filter_factory, query_epsilon):
    accountant = BlockAccountant(1.0, 1e-6, filter_factory=filter_factory)
    accountant.register_block("b")
    budget = PrivacyBudget(query_epsilon, 0.0)
    count = 0
    while accountant.can_charge(["b"], budget) and count < 100_000:
        accountant.charge(["b"], budget)
        count += 1
    return count


def bench_ablation_filters(benchmark):
    def run():
        rows = []
        for eps_q in (0.05, 0.02, 0.01, 0.005, 0.002):
            basic = _queries_absorbed(BasicCompositionFilter, eps_q)
            strong = _queries_absorbed(StrongCompositionFilter, eps_q)
            rows.append((eps_q, basic, strong))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: queries one block absorbs (eps_g=1, delta_g=1e-6)",
        "-" * 60,
        f"{'query eps':>10} {'basic':>8} {'strong':>8} {'gain':>6}",
    ]
    for eps_q, basic, strong in rows:
        lines.append(f"{eps_q:>10g} {basic:>8} {strong:>8} {strong / basic:>6.2f}")
    write_result("ablation_filters.txt", "\n".join(lines))
    # Strong composition wins exactly in the many-small-queries regime.
    smallest = rows[-1]
    assert smallest[2] > smallest[1]


def bench_ablation_conserve_vs_aggressive(benchmark):
    def run():
        out = {}
        for strategy in ("block-conserve", "block-aggressive"):
            cfg = WorkloadConfig(
                strategy=strategy, arrival_rate=0.7, horizon_hours=300.0
            )
            out[strategy] = WorkloadSimulator(cfg, seed=11).run()
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: conserve vs aggressive at 0.7 pipelines/hour", "-" * 60]
    for strategy, rep in reports.items():
        lines.append(
            f"{strategy:>18}: avg {rep.avg_release_time:6.1f}h, "
            f"released {rep.release_fraction:4.2f} of {rep.submitted}"
        )
    lines.append(
        "(paper: conserve 2-4x faster at 0.7/h; with our oracle workload's "
        "linear data<->epsilon exchange the strategies trade places -- see "
        "EXPERIMENTS.md's deviation note)"
    )
    write_result("ablation_conserve.txt", "\n".join(lines))
    # Both strategies must sustain the workload far better than baselines do.
    for rep in reports.values():
        assert rep.release_fraction > 0.5


def bench_ablation_rdp_conversion(benchmark):
    def run():
        rows = []
        for steps in (100, 1_000, 10_000):
            rdp = compute_rdp(0.01, 1.1, steps)
            improved, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, 1e-6, improved=True)
            classic, _ = rdp_to_epsilon(rdp, DEFAULT_ORDERS, 1e-6, improved=False)
            rows.append((steps, improved, classic))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: RDP->(eps,delta) conversion (q=0.01, sigma=1.1)",
        "-" * 60,
        f"{'steps':>8} {'improved':>10} {'classic':>10}",
    ]
    for steps, improved, classic in rows:
        lines.append(f"{steps:>8} {improved:>10.4f} {classic:>10.4f}")
        assert improved <= classic
    write_result("ablation_rdp.txt", "\n".join(lines))
