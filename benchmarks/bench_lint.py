"""Invariant-linter wall clock: collection, serial rules, parallel rules.

Two questions about ``python -m repro.analysis``:

* **Parity first**: the ``--jobs N`` fan-out must produce a report
  bit-identical to the serial run -- same findings, same order, same
  per-rule stats.  Any divergence fails the bench before a single
  timing is recorded.
* **Budget**: the linter runs on every CI push, so its full-tree wall
  clock is gated (``--assert-budget``, seconds).  The budget is a
  regression tripwire for the analysis passes themselves (an accidental
  quadratic CFG walk, an uncached call graph), not a scheduling SLA --
  it is calibrated loosely against the 1-CPU CI runner.

Run as a script (``PYTHONPATH=src python benchmarks/bench_lint.py``).
"""

import argparse
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from benchjson import write_bench_json, write_bench_report
from repro.analysis.engine import collect_project, run_rules, run_rules_parallel
from repro.analysis.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_JOBS = min(4, os.cpu_count() or 1)
DEFAULT_BUDGET_S = 20.0


def bench_lint(jobs, repeats=3):
    """Time collection plus serial and parallel rule runs over the real
    tree; returns (collect_s, serial_s, parallel_s, n_files) using the
    best of ``repeats`` for each timed phase."""
    collect_s = serial_s = parallel_s = None
    project = None
    for _ in range(repeats):
        start = time.perf_counter()
        project = collect_project(REPO_ROOT, list(DEFAULT_PATHS))
        elapsed = time.perf_counter() - start
        collect_s = elapsed if collect_s is None else min(collect_s, elapsed)

    rules = default_rules()
    serial_report = parallel_report = None
    for _ in range(repeats):
        start = time.perf_counter()
        serial_report = run_rules(project, rules)
        elapsed = time.perf_counter() - start
        serial_s = elapsed if serial_s is None else min(serial_s, elapsed)
    for _ in range(repeats):
        start = time.perf_counter()
        parallel_report = run_rules_parallel(project, rules, jobs)
        elapsed = time.perf_counter() - start
        parallel_s = elapsed if parallel_s is None else min(parallel_s, elapsed)

    if parallel_report != serial_report:
        raise AssertionError(
            f"--jobs {jobs} report diverged from the serial run "
            "(findings or stats differ)"
        )
    return collect_s, serial_s, parallel_s, len(project)


def run(jobs, assert_budget=0.0):
    collect_s, serial_s, parallel_s, n_files = bench_lint(jobs)
    total_s = collect_s + min(serial_s, parallel_s)
    case = write_bench_json(
        "lint",
        {"files": n_files, "jobs": jobs, "paths": list(DEFAULT_PATHS)},
        serial_s * 1e3,
        parallel_s * 1e3,
        bench="lint",
    )
    table = write_bench_report(
        "lint",
        f"Invariant linter: {n_files} files, {len(default_rules())} rules, "
        f"jobs={jobs} (cpus={os.cpu_count()})",
        [case],
        columns=("serial", "parallel"),
        notes=[
            f"collect+parse: {collect_s * 1e3:.1f}ms (untimed by the rule rows)",
            "parity: --jobs report is bit-identical to the serial run",
        ],
    )
    if assert_budget and total_s > assert_budget:
        raise AssertionError(
            f"full lint took {total_s:.2f}s, over the {assert_budget:.1f}s budget"
        )
    return table


def test_lint_bench_smoke():
    """CI gate: serial/parallel parity plus the wall-clock budget.  The
    budget is loose (the full tree lints in ~2s on the CI runner); it
    exists to catch an analysis pass going super-linear, not to pin the
    constant factor."""
    collect_s, serial_s, parallel_s, n_files = bench_lint(DEFAULT_JOBS, repeats=1)
    assert n_files > 100  # the sweep really covered the tree
    total_s = collect_s + min(serial_s, parallel_s)
    assert total_s <= DEFAULT_BUDGET_S, (
        f"full lint took {total_s:.2f}s, over the {DEFAULT_BUDGET_S:.1f}s budget"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--assert-budget",
        type=float,
        default=0.0,
        help="fail if collection plus the faster rule run exceeds this "
        "many seconds",
    )
    args = parser.parse_args()
    print(run(args.jobs, assert_budget=args.assert_budget))


if __name__ == "__main__":
    main()
