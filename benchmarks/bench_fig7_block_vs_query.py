"""Fig. 7 -- block-level vs. query-level accounting.

Panels (paper -> here, stream scaled 1/25):

* 7a: Taxi LR training quality -- combined AdaSSP fit vs. per-block fits
  averaged (blocks of 100K/500K -> 4K/20K).
* 7b: samples needed to ACCEPT MSE targets when validation runs once over
  the combined window vs. once per block.
* 7c: Taxi NN quality, combined vs. per-block DP-SGD with parameter
  averaging (5M-point blocks -> 16K).

Expected shape: query composition is uniformly worse; small blocks are
catastrophically worse; validation under query composition needs 10-100x
more data or fails outright.
"""

from conftest import FULL_SCALE, write_result

from repro.experiments import format_fig6, format_fig7
from repro.experiments.runners import run_fig7_accept_lr, run_fig7_lr, run_fig7_nn

_LR_SIZES = (
    (4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000)
    if FULL_SCALE
    else (4_000, 8_000, 16_000, 32_000, 64_000, 128_000)
)
_NN_SIZES = (16_000, 32_000, 64_000, 128_000) if FULL_SCALE else (16_000, 32_000, 64_000)


def bench_fig7a_lr_quality(benchmark):
    curves = benchmark.pedantic(
        run_fig7_lr,
        kwargs={
            "sample_sizes": _LR_SIZES,
            "block_sizes": (4_000, 20_000),
            "seeds": (0, 1),
            "eval_size": 25_000,
        },
        rounds=1,
        iterations=1,
    )
    write_result(
        "fig7a_lr_quality.txt",
        format_fig7("Fig 7a: Taxi LR MSE, block vs query composition", curves),
    )
    block = dict(curves["block"])
    small_blocks = dict(curves["query-4000"])
    big_blocks = dict(curves["query-20000"])
    n = max(block)
    # Query composition strictly worse; smaller blocks worse still.
    assert block[n] < big_blocks[n] < small_blocks[n]


def bench_fig7b_lr_accept(benchmark):
    required = benchmark.pedantic(
        run_fig7_accept_lr,
        kwargs={"targets": (0.005, 0.006, 0.007), "block_sizes": (4_000, 20_000)},
        rounds=1,
        iterations=1,
    )
    lines = ["Fig 7b: Taxi LR samples to ACCEPT, block vs query validation", "-" * 72]
    targets = sorted(next(iter(required.values())))
    lines.append(f"{'target':>10} " + " ".join(f"{k:>14}" for k in required))
    for t in targets:
        cells = []
        for k in required:
            v = required[k][t]
            cells.append(f"{v:>14}" if v is not None else f"{'unreach':>14}")
        lines.append(f"{t:>10g} " + " ".join(cells))
    write_result("fig7b_lr_accept.txt", "\n".join(lines))
    # Block composition validates targets that query composition cannot.
    block_ok = sum(v is not None for v in required["block"].values())
    query_ok = sum(v is not None for v in required["query-4000"].values())
    assert block_ok > query_ok


def bench_fig7c_nn_quality(benchmark):
    curves = benchmark.pedantic(
        run_fig7_nn,
        kwargs={"sample_sizes": _NN_SIZES, "block_size": 16_000},
        rounds=1,
        iterations=1,
    )
    write_result(
        "fig7c_nn_quality.txt",
        format_fig7("Fig 7c: Taxi NN MSE, block vs query composition", curves),
    )
    block = dict(curves["block"])
    query = dict(curves["query-16000"])
    n = max(set(block) & set(query))
    assert block[n] <= query[n] * 1.02  # combined training at least as good
