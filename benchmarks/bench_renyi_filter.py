"""Renyi block accounting payoff: admission gain + scan-speed parity.

Two claims, both gated in CI:

* **Admission gain.**  At an equal ``(epsilon_global, delta_global)`` target
  a block filtered by :class:`RenyiCompositionFilter` admits strictly more
  charges than :class:`StrongCompositionFilter` in a DP-SGD-style
  many-small-charges workload -- both for plain ``(epsilon, delta)`` charges
  (the pure-DP RDP reduction vs Rogers' constant) and, far more so, for
  Gaussian-mechanism charges carrying their exact RDP curve
  (``--assert-admission-gain``).
* **Scan parity.**  The order-extended ``(n, 4 + len(orders))`` store keeps
  whole-stream scans a single vectorized pass: the Renyi accountant's
  ``usable_blocks`` + ``can_charge`` hot path must beat a per-ledger scalar
  loop by the usual factor (``--assert-speedup``) and stay within a small
  constant of the 4-column strong filter's scans
  (``--assert-scan-ratio``).

Run as a script (``PYTHONPATH=src python benchmarks/bench_renyi_filter.py``)
or through pytest; emits ``results/bench_renyi_filter.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from benchjson import (
    RESULTS_DIR,
    write_bench_json,
    write_bench_report,
    write_text_atomic,
)
from repro.core.accountant import BlockAccountant
from repro.core.filters import (
    BasicCompositionFilter,
    RenyiCompositionFilter,
    StrongCompositionFilter,
)
from repro.dp.budget import PrivacyBudget
from repro.dp.rdp import gaussian_mechanism_budget

EPSILON_GLOBAL = 1.0
DELTA_GLOBAL = 1e-6
# DP-SGD-style small charges: many low-epsilon queries against one block.
SGD_CHARGE = dict(epsilon=0.01, delta=1e-9)
GAUSSIAN_CHARGE = dict(q=0.005, sigma=3.0, steps=20, delta=1e-9)
MAX_CHARGES = 6_000
SCAN_BLOCKS = 10_000
CHARGE_FRACTION = 0.2
WINDOW = 256


# ----------------------------------------------------------------------
# Admission gain: charges absorbed by one block before refusal
# ----------------------------------------------------------------------
def count_admitted(filter_obj, charge) -> int:
    totals = np.zeros(filter_obj.totals_width)
    admitted = 0
    while admitted < MAX_CHARGES and filter_obj.admits(
        (), charge, totals=tuple(totals)
    ):
        totals += filter_obj.contribution(charge)
        admitted += 1
    return admitted


def admission_counts():
    plain = PrivacyBudget(SGD_CHARGE["epsilon"], SGD_CHARGE["delta"])
    gaussian = gaussian_mechanism_budget(**GAUSSIAN_CHARGE)
    filters = {
        "basic": BasicCompositionFilter,
        "strong": StrongCompositionFilter,
        "renyi": RenyiCompositionFilter,
    }
    counts = {}
    for name, factory in filters.items():
        filter_obj = factory(EPSILON_GLOBAL, DELTA_GLOBAL)
        counts[name] = count_admitted(filter_obj, plain)
        counts[f"{name}_gaussian"] = count_admitted(filter_obj, gaussian)
    return counts, gaussian.epsilon


# ----------------------------------------------------------------------
# Scan parity: the accountant's vectorized hot path on the wide store
# ----------------------------------------------------------------------
def build_accountant(factory, n_blocks: int, seed: int = 0) -> BlockAccountant:
    acc = BlockAccountant(EPSILON_GLOBAL, DELTA_GLOBAL, filter_factory=factory)
    acc.register_blocks(range(n_blocks))
    rng = np.random.default_rng(seed)
    charged = rng.choice(
        n_blocks, size=int(CHARGE_FRACTION * n_blocks), replace=False
    )
    for key in charged:
        acc.ledger(int(key)).record(
            PrivacyBudget(float(rng.uniform(0.05, 0.5)), 0.0)
        )
    return acc


def scalar_scan(acc: BlockAccountant, floor, window, charge):
    """The seed's per-ledger loop, as a baseline on the same ledgers."""
    usable = []
    for key in acc.block_keys:
        ledger = acc.ledger(key)
        if ledger.is_retired(acc.retirement_budget):
            continue
        if ledger.admits(floor):
            usable.append(key)
    ok = all(acc.ledger(k).admits(charge) for k in window)
    return usable, ok


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def scan_times(n_blocks: int, repeats: int = 5):
    floor = PrivacyBudget(0.05, 0.0)
    charge = PrivacyBudget(0.05, 0.0)
    window = list(range(0, n_blocks, max(1, n_blocks // WINDOW)))[:WINDOW]

    renyi = build_accountant(RenyiCompositionFilter, n_blocks)
    strong = build_accountant(StrongCompositionFilter, n_blocks)

    expected = scalar_scan(renyi, floor, window, charge)
    got = (renyi.usable_blocks(floor), renyi.can_charge(window, charge))
    if got != expected:
        raise AssertionError(
            "vectorized Renyi scan diverged from the per-ledger loop"
        )

    t_renyi = _best_of(
        lambda: (renyi.usable_blocks(floor), renyi.can_charge(window, charge)),
        repeats,
    )
    t_strong = _best_of(
        lambda: (strong.usable_blocks(floor), strong.can_charge(window, charge)),
        repeats,
    )
    t_scalar = _best_of(lambda: scalar_scan(renyi, floor, window, charge), repeats)
    return t_scalar, t_strong, t_renyi


def run(
    n_blocks: int = SCAN_BLOCKS,
    assert_admission_gain: bool = False,
    assert_speedup: float = 0.0,
    assert_scan_ratio: float = 0.0,
):
    counts, gaussian_eps = admission_counts()
    t_scalar, t_strong, t_renyi = scan_times(n_blocks)
    speedup = t_scalar / t_renyi
    ratio = t_renyi / t_strong

    scan_case = write_bench_json(
        "renyi_scan",
        {
            "blocks": n_blocks,
            "charge_fraction": CHARGE_FRACTION,
            "window": WINDOW,
            "strong_ms": t_strong * 1e3,
        },
        t_scalar * 1e3,
        t_renyi * 1e3,
        bench="renyi_filter",
    )
    table = write_bench_report(
        "renyi_filter",
        "Renyi vs strong composition at equal "
        f"(eps_g={EPSILON_GLOBAL}, delta_g={DELTA_GLOBAL})",
        [scan_case],
        columns=("per-ledger", "renyi (73 cols)"),
        notes=[
            f"strong (4 cols) scans the same hot path in {t_strong * 1e3:.2f}ms "
            f"(renyi takes {ratio:.1f}x strong's time)",
            f"admitted per block, plain eps={SGD_CHARGE['epsilon']} "
            f"delta={SGD_CHARGE['delta']}: basic {counts['basic']}, "
            f"strong {counts['strong']}, renyi {counts['renyi']} "
            f"({counts['renyi'] / max(1, counts['strong']):.1f}x strong)",
            f"admitted per block, Gaussian q={GAUSSIAN_CHARGE['q']} "
            f"sigma={GAUSSIAN_CHARGE['sigma']} steps={GAUSSIAN_CHARGE['steps']} "
            f"(converted eps={gaussian_eps:.3f}): "
            f"basic {counts['basic_gaussian']}, "
            f"strong {counts['strong_gaussian']}, "
            f"renyi {counts['renyi_gaussian']} "
            f"({counts['renyi_gaussian'] / max(1, counts['strong_gaussian']):.1f}x strong)",
        ],
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": "renyi_filter",
        "meta": scan_case["meta"],
        "params": {
            "epsilon_global": EPSILON_GLOBAL,
            "delta_global": DELTA_GLOBAL,
            "sgd_charge": SGD_CHARGE,
            "gaussian_charge": GAUSSIAN_CHARGE,
            "gaussian_converted_epsilon": gaussian_eps,
            "scan_blocks": n_blocks,
            "charge_fraction": CHARGE_FRACTION,
            "window": WINDOW,
        },
        "admitted": counts,
        "admission_gain": counts["renyi"] / max(1, counts["strong"]),
        "admission_gain_gaussian": counts["renyi_gaussian"]
        / max(1, counts["strong_gaussian"]),
        "scan": {
            "scalar_ms": t_scalar * 1e3,
            "strong_ms": t_strong * 1e3,
            "renyi_ms": t_renyi * 1e3,
            "speedup_vs_scalar": speedup,
            "ratio_vs_strong": ratio,
        },
    }
    write_text_atomic(
        RESULTS_DIR / "bench_renyi_filter.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )

    if assert_admission_gain:
        if not counts["renyi"] > counts["strong"]:
            raise AssertionError(
                f"no admission gain on plain charges: renyi {counts['renyi']} "
                f"vs strong {counts['strong']}"
            )
        if not counts["renyi_gaussian"] > counts["strong_gaussian"]:
            raise AssertionError(
                f"no admission gain on Gaussian charges: "
                f"renyi {counts['renyi_gaussian']} vs "
                f"strong {counts['strong_gaussian']}"
            )
    if assert_speedup and speedup < assert_speedup:
        raise AssertionError(
            f"Renyi scan speedup {speedup:.1f}x over the per-ledger loop is "
            f"below the required {assert_speedup}x"
        )
    if assert_scan_ratio and ratio > assert_scan_ratio:
        raise AssertionError(
            f"Renyi scan takes {ratio:.1f}x the strong filter's time, over "
            f"the allowed {assert_scan_ratio}x"
        )
    return table


def test_admission_gain_and_scan_parity():
    """Acceptance: strictly more admitted charges than strong composition
    at equal targets, with scans still vectorized-fast on the wide store."""
    run(n_blocks=2_000, assert_admission_gain=True, assert_speedup=3.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=SCAN_BLOCKS)
    parser.add_argument(
        "--assert-admission-gain",
        action="store_true",
        help="fail unless Renyi admits strictly more charges than strong "
        "composition in both scenarios",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless the vectorized Renyi scan beats the per-ledger "
        "loop by this factor",
    )
    parser.add_argument(
        "--assert-scan-ratio",
        type=float,
        default=0.0,
        help="fail if the Renyi scan takes more than this multiple of the "
        "strong filter's scan time",
    )
    args = parser.parse_args()
    print(
        run(
            n_blocks=args.blocks,
            assert_admission_gain=args.assert_admission_gain,
            assert_speedup=args.assert_speedup,
            assert_scan_ratio=args.assert_scan_ratio,
        )
    )


if __name__ == "__main__":
    main()
