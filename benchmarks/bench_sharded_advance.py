"""Sharded accounting + parallel propose drive vs the sequential drive.

Two measurements on the heavy-contention shape of the Fig. 8 loop (many
waiting pipelines scanning a long stream every hour):

* ``advance``: the batched hourly drive with the **parallel propose
  phase** (worker-pool session peeks against the hour's frozen snapshot,
  whole-stream admit scans shared across sessions) versus the sequential
  propose loop, over sharded accountants at shard counts 1 / 4 / 8.
  Parity is always asserted first: hash- and range-partitioned sharded
  platforms, with and without parallel propose, must reproduce the
  single-store sequential drive's simulation byte for byte.
* ``stream_assembly``: window assembly through the growing database's
  packed-column store (preallocated columns filled once at ingest, windows
  read back as one slice/gather) versus the legacy per-block
  ``StreamBatch.concatenate`` walk -- the before/after of the
  assembly-dominated hot path.

Run as a script (``PYTHONPATH=src python benchmarks/bench_sharded_advance.py``);
``--assert-speedup`` gates the parallel-vs-sequential advance ratio at
every shard count (CI uses 1.0: parallel must never lose), and
``--assert-assembly-speedup`` gates the packed assembly win.
"""

import argparse
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from benchjson import write_bench_json, write_bench_report
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.core.sharding import sharded_accountant_factory
from repro.data.stream import StreamBatch
from repro.workload.oracle import CountStreamSource, OraclePipeline

DEFAULT_PIPELINES = 200
DEFAULT_BLOCKS = 5_000
SHARD_COUNTS = (1, 4, 8)
DEFAULT_WORKERS = min(8, max(2, os.cpu_count() or 2))


# ----------------------------------------------------------------------
# Parity: sharded + parallel must reproduce the single-store sequential
# drive byte for byte.
# ----------------------------------------------------------------------
def _fingerprint(sage):
    sage.access.accountant.retired_blocks()  # persist pending retirement
    return (
        [
            [
                (a.attempt, a.window, a.budget.epsilon, a.outcome)
                for a in e.session.attempts
            ]
            for e in sage.pipelines
        ],
        [e.status for e in sage.pipelines],
        [e.release_time_hours for e in sage.pipelines],
        sage.access.accountant.store.totals.tobytes(),
        sage.access.accountant.store.live.tobytes(),
        sage.reservation_table.matrix.tobytes(),
        [
            (r.budget.epsilon, r.block_keys, r.label)
            for r in sage.access.accountant.charges
        ],
    )


def check_sharded_parity():
    def drive(factory, workers):
        sage = Sage(
            CountStreamSource(4000, scale=1000),
            seed=3,
            accountant_factory=factory,
            propose_workers=workers,
        )
        for i, complexity in enumerate((2_000.0, 10_000.0, 40_000.0, 1e9)):
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=complexity),
                AdaptiveConfig(max_attempts=16),
            )
        for _ in range(40):
            sage.advance(1.0)
        fingerprint = _fingerprint(sage)
        sage.close()
        return fingerprint

    reference = drive(None, 0)
    for policy, n_shards, workers in (
        ("hash", 2, 0),
        ("hash", 4, 4),
        ("range", 4, 4),
        ("hash", 8, 8),
    ):
        got = drive(sharded_accountant_factory(n_shards, policy=policy), workers)
        if got != reference:
            raise AssertionError(
                f"sharded {policy} N={n_shards} workers={workers} diverged "
                "from the single-store sequential drive"
            )


# ----------------------------------------------------------------------
# Part 1: parallel propose vs sequential drive across shard counts
# ----------------------------------------------------------------------
def build_starved_platform(n_pipelines, n_blocks, n_shards, workers):
    """A stream ``n_blocks`` hours old with ``n_pipelines`` starved
    sessions: every hour each session scans the whole stream for an
    affordable window and blocks again -- the propose-dominated
    steady-state of heavy traffic, where the parallel phase carries the
    whole hour."""
    factory = sharded_accountant_factory(n_shards) if n_shards else None
    sage = Sage(
        CountStreamSource(1000, scale=1000),
        seed=0,
        accountant_factory=factory,
        propose_workers=workers,
    )
    sage.advance(float(n_blocks))  # blocks land with nobody waiting
    config = AdaptiveConfig(epsilon_start=0.5, epsilon_floor=0.5, max_attempts=4)
    for i in range(n_pipelines):
        sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=1e12), config)
    sage.advance(1.0)  # grant the free pool; sessions scan and starve
    return sage


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_advance(n_pipelines, n_blocks, n_shards, workers, repeats=3):
    sequential = build_starved_platform(n_pipelines, n_blocks, n_shards, 0)
    parallel = build_starved_platform(n_pipelines, n_blocks, n_shards, workers)
    t_seq = _best_of(lambda: sequential.advance(1.0), repeats)
    t_par = _best_of(lambda: parallel.advance(1.0), repeats)
    adopted, invalidated = parallel.last_hour_speculations
    sequential.close()
    parallel.close()
    if invalidated or adopted != n_pipelines:
        raise AssertionError(
            f"expected every speculation adopted in the starved hour, got "
            f"adopted={adopted} invalidated={invalidated}"
        )
    return t_seq, t_par, t_seq / t_par


# ----------------------------------------------------------------------
# Part 2: window assembly -- packed columns vs per-block concatenation
# ----------------------------------------------------------------------
def bench_assembly(n_blocks, repeats=5):
    """Assemble a window of ``n_blocks`` one-row blocks (the simulator's
    block shape) through the packed store vs the legacy concatenate walk."""
    sage = Sage(CountStreamSource(1000, scale=1000), seed=0)
    sage.advance(float(n_blocks))
    database = sage.database
    keys = database.keys
    # The "before": per-block slabs (as the database used to store them)
    # concatenated per assembled window.  Materialized once, outside the
    # timed loop, so the baseline measures exactly the old walk.
    slabs = [database.get(k).batch for k in keys]

    def packed():
        return database.assemble(keys)

    def legacy():
        return StreamBatch.concatenate(slabs)

    fast = packed()
    slow = legacy()
    if not (
        np.array_equal(fast.X, slow.X)
        and np.array_equal(fast.y, slow.y)
        and np.array_equal(fast.timestamps, slow.timestamps)
        and np.array_equal(fast.user_ids, slow.user_ids)
        and set(fast.extras) == set(slow.extras)
        and all(np.array_equal(fast.extras[k], slow.extras[k]) for k in slow.extras)
    ):
        raise AssertionError("packed assembly diverged from concatenate")
    t_slow = _best_of(legacy, repeats)
    t_fast = _best_of(packed, repeats)
    return t_slow, t_fast, t_slow / t_fast


# ----------------------------------------------------------------------
def run(n_pipelines, n_blocks, workers, assert_speedup=0.0, assert_assembly=0.0):
    check_sharded_parity()

    cases = []
    per_shard = {}
    for n_shards in SHARD_COUNTS:
        t_seq, t_par, speedup = bench_advance(n_pipelines, n_blocks, n_shards, workers)
        per_shard[n_shards] = (t_seq, t_par, speedup)
        cases.append(
            write_bench_json(
                f"sharded_advance_s{n_shards}",
                {
                    "pipelines": n_pipelines,
                    "blocks": n_blocks,
                    "shards": n_shards,
                    "workers": workers,
                },
                t_seq * 1e3,
                t_par * 1e3,
                bench="sharded_advance",
            )
        )
        if assert_speedup and speedup < assert_speedup:
            raise AssertionError(
                f"parallel propose speedup {speedup:.2f}x at {n_shards} shards "
                f"is below the required {assert_speedup}x"
            )

    # Headline artifact (the mid shard count), per-shard ratios in params.
    head_seq, head_par, _ = per_shard[SHARD_COUNTS[len(SHARD_COUNTS) // 2]]
    write_bench_json(
        "sharded_advance",
        {
            "pipelines": n_pipelines,
            "blocks": n_blocks,
            "workers": workers,
            "shards": SHARD_COUNTS[len(SHARD_COUNTS) // 2],
            "speedup_by_shards": {
                str(n): round(s, 3) for n, (_, _, s) in per_shard.items()
            },
        },
        head_seq * 1e3,
        head_par * 1e3,
        bench="sharded_advance",
    )

    a_slow, a_fast, a_speedup = bench_assembly(n_blocks)
    write_bench_json(
        "stream_assembly",
        {"blocks": n_blocks, "rows_per_block": 1},
        a_slow * 1e3,
        a_fast * 1e3,
        bench="sharded_advance",
    )
    if assert_assembly and a_speedup < assert_assembly:
        raise AssertionError(
            f"packed assembly speedup {a_speedup:.1f}x is below the required "
            f"{assert_assembly}x"
        )
    return write_bench_report(
        "sharded_advance",
        "sharded advance: parallel propose vs sequential drive "
        f"({n_pipelines} pipelines x {n_blocks} blocks, {workers} workers)",
        cases,
        columns=("sequential", "parallel"),
        notes=[
            f"assembly {n_blocks} blocks: concatenate {a_slow * 1e3:.2f}ms -> "
            f"packed {a_fast * 1e3:.2f}ms ({a_speedup:.1f}x)",
            "parity: sharded + parallel drives reproduce the single-store "
            "sequential drive byte for byte",
        ],
    )


def test_sharded_advance_speedup():
    """CI smoke: parity + parallel propose at least matching sequential."""
    check_sharded_parity()
    t_seq, t_par, speedup = bench_advance(60, 1500, 4, DEFAULT_WORKERS)
    assert speedup >= 1.0, f"only {speedup:.2f}x (seq {t_seq:.4f}s par {t_par:.4f}s)"
    a_slow, a_fast, a_speedup = bench_assembly(1500)
    assert a_speedup >= 2.0, f"assembly only {a_speedup:.1f}x"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pipelines", type=int, default=DEFAULT_PIPELINES)
    parser.add_argument("--blocks", type=int, default=DEFAULT_BLOCKS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless the parallel-propose drive beats the sequential "
        "drive by this factor at every shard count",
    )
    parser.add_argument(
        "--assert-assembly-speedup",
        type=float,
        default=0.0,
        help="fail unless packed assembly beats per-block concatenation "
        "by this factor",
    )
    args = parser.parse_args()
    print(
        run(
            args.pipelines,
            args.blocks,
            args.workers,
            assert_speedup=args.assert_speedup,
            assert_assembly=args.assert_assembly_speedup,
        )
    )


if __name__ == "__main__":
    main()
