"""Block-ledger scan throughput: vectorized store vs. per-ledger loop.

The ROADMAP's north star is streams with thousands of hours of blocks, so
``usable_blocks`` / ``can_charge`` scans -- executed by every session of
every pipeline, every simulated hour -- must not be Python-object loops.
This bench times the accountant's vectorized struct-of-arrays scans against
a faithful reimplementation of the seed's per-ledger loop at 1k / 10k /
100k registered blocks.

Run as a script (``PYTHONPATH=src python benchmarks/bench_block_scan.py``)
or through pytest (the 10k case asserts the >= 5x acceptance threshold and
serves as the CI smoke test).
"""

import argparse
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from benchjson import write_bench_json, write_bench_report
from repro.core.accountant import BlockAccountant
from repro.dp.budget import PrivacyBudget

SIZES = (1_000, 10_000, 100_000)
CHARGE_FRACTION = 0.2  # share of blocks carrying some spend
WINDOW = 256  # keys named per can_charge call


def build_accountant(n_blocks: int, seed: int = 0) -> BlockAccountant:
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks(range(n_blocks))
    rng = np.random.default_rng(seed)
    charged = rng.choice(n_blocks, size=int(CHARGE_FRACTION * n_blocks), replace=False)
    for key in charged:
        acc.ledger(int(key)).record(PrivacyBudget(float(rng.uniform(0.1, 0.99)), 0.0))
    return acc


# ----------------------------------------------------------------------
# The seed's per-ledger loops, preserved as the baseline under test.
# ----------------------------------------------------------------------
def legacy_usable_blocks(acc: BlockAccountant, floor: PrivacyBudget):
    out = []
    for key in acc.block_keys:
        led = acc.ledger(key)
        if led.is_retired(acc.retirement_budget):
            continue
        if led.admits(floor):
            out.append(key)
    return out


def legacy_can_charge(acc: BlockAccountant, keys, budget: PrivacyBudget) -> bool:
    if not keys:
        return False
    return all(acc.ledger(k).admits(budget) for k in keys)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_size(n_blocks: int, repeats: int = 5):
    floor = PrivacyBudget(0.05, 0.0)
    charge = PrivacyBudget(0.05, 0.0)
    window = list(range(0, n_blocks, max(1, n_blocks // WINDOW)))[:WINDOW]

    acc = build_accountant(n_blocks)
    fast = lambda: (acc.usable_blocks(floor), acc.can_charge(window, charge))
    slow = lambda: (legacy_usable_blocks(acc, floor), legacy_can_charge(acc, window, charge))

    expected = (legacy_usable_blocks(acc, floor), legacy_can_charge(acc, window, charge))
    got = (acc.usable_blocks(floor), acc.can_charge(window, charge))
    if got != expected:
        raise AssertionError(f"vectorized scan diverged from per-ledger loop at n={n_blocks}")

    t_fast = _best_of(fast, repeats)
    t_slow = _best_of(slow, repeats)
    return t_slow, t_fast, t_slow / t_fast


def run(sizes=SIZES, assert_speedup: float = 0.0) -> str:
    cases = []
    for n_blocks in sizes:
        t_slow, t_fast, speedup = bench_size(n_blocks)
        cases.append(
            write_bench_json(
                f"block_scan_{n_blocks}",
                {"blocks": n_blocks, "charge_fraction": CHARGE_FRACTION, "window": WINDOW},
                t_slow * 1e3,
                t_fast * 1e3,
                bench="block_scan",
            )
        )
        if assert_speedup and n_blocks >= 10_000 and speedup < assert_speedup:
            raise AssertionError(
                f"scan speedup {speedup:.1f}x at {n_blocks} blocks is below the "
                f"required {assert_speedup}x"
            )
    return write_bench_report(
        "block_scan",
        "block-ledger scan: usable_blocks + can_charge (best of 5)",
        cases,
        columns=("per-ledger", "vectorized"),
    )


def test_scan_speedup_at_10k():
    """Acceptance: >= 5x over the seed loop at 10k registered blocks."""
    t_slow, t_fast, speedup = bench_size(10_000)
    assert speedup >= 5.0, f"only {speedup:.1f}x (slow {t_slow:.4f}s fast {t_fast:.4f}s)"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, nargs="*", default=list(SIZES))
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless the >=10k-block scans beat the loop by this factor",
    )
    args = parser.parse_args()
    print(run(tuple(args.blocks), assert_speedup=args.assert_speedup))


if __name__ == "__main__":
    main()
