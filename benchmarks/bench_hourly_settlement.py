"""Hourly settlement throughput: ReservationTable + charge_many vs the seed.

Three hot paths of the Fig. 8 end-to-end loop, timed against faithful
reimplementations of the seed's scalar code:

* ``Sage.advance`` under heavy contention (many waiting pipelines over a
  long stream).  The baseline is the seed's allocator -- per-pipeline
  reservation *dicts* plus a per-key Python allocation filter inside window
  selection -- preserved below as :class:`LegacySage`.  The new platform
  keeps reservations in one pipelines x blocks ``ReservationTable`` aligned
  to the ledger store, so allocation, redistribution, settlement, and the
  window-selection filter are single NumPy passes.
* ``BlockAccountant.charge_many``: settling a whole batch of multi-block
  charges in one vectorized validate-and-commit pass, against the
  equivalent loop of per-request ``charge`` calls.
* ``advance_batched``: the propose/settle hourly batch.  Both sides run the
  modern ReservationTable allocator; the baseline
  (:class:`PerSessionSage`) drives the seed's per-session loop where every
  attempt executes its own ``access.request`` (per-key ledger commits
  mid-hour), while the batched platform stages every proposal and settles
  the whole hour through one ``request_many`` bulk commit.

Run as a script (``PYTHONPATH=src python benchmarks/bench_hourly_settlement.py``);
``--assert-speedup`` turns it into the CI perf gate.  Parity is always
asserted: the legacy, per-session, and batched platforms must produce
byte-identical simulations (attempt streams, ledger totals, reservations,
charge logs), and batched charges must leave the same ledger totals as
sequential ones.
"""

import argparse
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from benchjson import write_bench_json, write_bench_report
from repro.core.accountant import BlockAccountant
from repro.core.adaptive import AdaptiveConfig, AdaptiveSession, SessionStatus
from repro.core.platform import Sage, SubmittedPipeline
from repro.dp.budget import PrivacyBudget
from repro.workload.oracle import CountStreamSource, OraclePipeline

DEFAULT_PIPELINES = 200
DEFAULT_BLOCKS = 5_000
CHARGE_WINDOW = 256  # blocks named per settlement charge
BATCHED_HOURS = 2  # hours timed for the advance_batched case


class SeedAdvanceLoop:
    """The seed's per-session advance: every waiting session resumes and
    executes its own ``access.request`` charges mid-loop -- no staging, no
    hourly bulk commit.  Mixed into the legacy baselines so they keep
    measuring the pre-propose/settle platform."""

    def advance(self, hours=1.0):
        new_blocks = self.ingestor.advance(hours)
        self.access.register_blocks([block.key for block in new_blocks])
        for block in new_blocks:
            self._allocate_block(block.key)
        self._grant_free_pool()
        released = []
        for entry in self._pipelines:
            if not entry.waiting:
                continue
            entry.session.resume()
            self._settle_charges(entry)
            if entry.session.status == SessionStatus.ACCEPTED:
                run = entry.session.final_run
                bundle = self.store.release(
                    name=entry.name,
                    model=run.model,
                    features=run.features,
                    validation=run.validation,
                    budget=entry.session.total_spent,
                    block_keys=entry.session.attempts[-1].window,
                    release_time_hours=self.clock_hours,
                )
                entry.bundle = bundle
                entry.release_time_hours = self.clock_hours
                released.append(bundle)
                self._redistribute(entry)
            elif entry.session.is_terminal:
                self._redistribute(entry)
        return released


class PerSessionSage(SeedAdvanceLoop, Sage):
    """Modern ReservationTable allocator driven by the seed's per-session
    charge loop -- the baseline that isolates the hourly-batch win."""


# ----------------------------------------------------------------------
# The seed's dict-based allocator, preserved as the baseline under test.
# ----------------------------------------------------------------------
class LegacySage(SeedAdvanceLoop, Sage):
    """Seed allocator: per-pipeline reservation dicts + scalar key filter."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._legacy_free = {}

    def submit(self, pipeline, config=None):
        config = config or AdaptiveConfig()
        entry = SubmittedPipeline(
            pipeline=pipeline,
            session=None,
            submit_time_hours=self.clock_hours,
            table_row=self._table.add_pipeline(),  # row kept aligned, unused
            platform=self,
        )
        entry.legacy_reservations = {}
        session = AdaptiveSession(
            pipeline,
            self.access,
            self.database,
            config,
            self.rng,
            epsilon_limit_fn=lambda window, e=entry: self._reservation_limit(e, window),
            new_block_epsilon_fn=self._new_block_share,
        )
        entry.session = session
        self._pipelines.append(entry)
        return entry

    def _allocate_block(self, key):
        waiting = self._waiting_pipelines()
        if not waiting:
            self._legacy_free[key] = self._legacy_free.get(key, 0.0) + self.epsilon_global
            return
        share = self.epsilon_global / len(waiting)
        for entry in waiting:
            entry.legacy_reservations[key] = (
                entry.legacy_reservations.get(key, 0.0) + share
            )

    def _redistribute(self, finished):
        leftovers = {k: v for k, v in finished.legacy_reservations.items() if v > 0}
        finished.legacy_reservations = {}
        waiting = self._waiting_pipelines()
        for key, amount in leftovers.items():
            if waiting:
                share = amount / len(waiting)
                for entry in waiting:
                    entry.legacy_reservations[key] = (
                        entry.legacy_reservations.get(key, 0.0) + share
                    )
            else:
                self._legacy_free[key] = self._legacy_free.get(key, 0.0) + amount

    def _grant_free_pool(self):
        waiting = self._waiting_pipelines()
        if not waiting or not self._legacy_free:
            return
        for key, amount in list(self._legacy_free.items()):
            share = amount / len(waiting)
            for entry in waiting:
                entry.legacy_reservations[key] = (
                    entry.legacy_reservations.get(key, 0.0) + share
                )
            del self._legacy_free[key]

    def _settle_charges(self, entry):
        for record in entry.session.attempts[entry.settled_attempts:]:
            for key in record.window:
                held = entry.legacy_reservations.get(key, 0.0)
                entry.legacy_reservations[key] = max(
                    0.0, held - record.budget.epsilon
                )
        entry.settled_attempts = len(entry.session.attempts)

    def _reservation_limit(self, entry, window):
        self._settle_charges(entry)
        if not window:
            return 0.0
        return min(entry.legacy_reservations.get(key, 0.0) for key in window)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Part 1: Sage.advance under contention
# ----------------------------------------------------------------------
def build_platform(sage_cls, n_pipelines, n_blocks):
    """A stream ``n_blocks`` hours old with ``n_pipelines`` starved sessions.

    Every pipeline holds eps_g / n_pipelines on every block -- far below the
    committed epsilon_start -- so each hour every session scans the whole
    stream for an affordable window and blocks again: the worst-case (and
    steady-state heavy-traffic) shape of the Fig. 8 loop.
    """
    sage = sage_cls(CountStreamSource(1000, scale=1000), seed=0)
    sage.advance(float(n_blocks))  # blocks land with nobody waiting
    config = AdaptiveConfig(epsilon_start=0.5, epsilon_floor=0.5, max_attempts=4)
    for i in range(n_pipelines):
        sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=1e12), config)
    sage.advance(1.0)  # grant the free pool; sessions scan and starve
    return sage

def check_platform_parity():
    """Legacy and vectorized platforms must produce identical simulations."""
    outcomes = []
    for sage_cls in (LegacySage, Sage):
        sage = sage_cls(CountStreamSource(4000, scale=1000), seed=3)
        entries = [
            sage.submit(
                OraclePipeline(name=f"p{i}", n_at_eps1=complexity),
                AdaptiveConfig(max_attempts=16),
            )
            for i, complexity in enumerate((2_000.0, 10_000.0, 40_000.0, 1e9))
        ]
        for _ in range(40):
            sage.advance(1.0)
        outcomes.append(
            [(e.status, e.release_time_hours, e.settled_attempts) for e in entries]
        )
    if outcomes[0] != outcomes[1]:
        raise AssertionError(
            f"vectorized platform diverged from the legacy allocator:\n"
            f"legacy     {outcomes[0]}\nvectorized {outcomes[1]}"
        )


def bench_advance(n_pipelines, n_blocks, repeats=3):
    fast = build_platform(Sage, n_pipelines, n_blocks)
    slow = build_platform(LegacySage, n_pipelines, n_blocks)
    t_fast = _best_of(lambda: fast.advance(1.0), repeats)
    t_slow = _best_of(lambda: slow.advance(1.0), repeats)
    return t_slow, t_fast, t_slow / t_fast


# ----------------------------------------------------------------------
# Part 1b: batched propose/settle vs the seed per-session charge loop
# ----------------------------------------------------------------------
def build_charging_platform(sage_cls, n_pipelines, n_blocks, **sage_kwargs):
    """A stream where every session fires multi-block charges each hour.

    Sessions commit to a wide minimum window and an epsilon floor of ~0, so
    under contention each attempt runs at the granted allocation level and
    RETRYs (the oracle requirement is unreachable), doubling its window --
    one hour produces a burst of wide overlapping settlement charges per
    session, the write-heavy shape that separates per-attempt ledger
    commits from the hourly bulk commit.
    """
    sage = sage_cls(CountStreamSource(1000, scale=1000), seed=0, **sage_kwargs)
    sage.advance(float(n_blocks))  # blocks land with nobody waiting
    config = AdaptiveConfig(
        epsilon_start=1.0 / 16.0,
        epsilon_floor=1e-9,
        min_window_blocks=min(64, n_blocks // 4),
        max_attempts=100_000,
    )
    for i in range(n_pipelines):
        sage.submit(OraclePipeline(name=f"p{i}", n_at_eps1=1e15), config)
    return sage


def check_batched_advance_parity(n_pipelines=12, n_blocks=400, hours=3):
    """The batched hour must reproduce the per-session loop byte-for-byte."""
    outcomes = []
    for sage_cls in (PerSessionSage, Sage):
        sage = build_charging_platform(sage_cls, n_pipelines, n_blocks)
        for _ in range(hours):
            sage.advance(1.0)
        sage.access.accountant.retired_blocks()  # persist pending retirement
        outcomes.append(
            (
                [
                    [
                        (a.attempt, a.window, a.budget.epsilon, a.outcome)
                        for a in e.session.attempts
                    ]
                    for e in sage.pipelines
                ],
                sage.access.accountant.store.totals.tobytes(),
                sage.access.accountant.store.live.tobytes(),
                sage.reservation_table.matrix.tobytes(),
                [
                    (r.budget.epsilon, r.block_keys, r.label)
                    for r in sage.access.accountant.charges
                ],
            )
        )
    if outcomes[0] != outcomes[1]:
        raise AssertionError(
            "batched propose/settle advance diverged from the per-session loop"
        )


def bench_advance_batched(n_pipelines, n_blocks, hours=BATCHED_HOURS, repeats=2):
    """Time the charging burst end-to-end, fresh platform per repeat (the
    hour mutates the stream, so the measured loop cannot be replayed)."""

    def timed(sage_cls):
        best = float("inf")
        for _ in range(repeats):
            sage = build_charging_platform(sage_cls, n_pipelines, n_blocks)
            start = time.perf_counter()
            for _ in range(hours):
                sage.advance(1.0)
            best = min(best, time.perf_counter() - start)
        return best

    t_slow = timed(PerSessionSage)
    t_fast = timed(Sage)
    return t_slow, t_fast, t_slow / t_fast


# ----------------------------------------------------------------------
# Part 2: charge_many vs sequential charge
# ----------------------------------------------------------------------
def build_accountant(n_blocks):
    acc = BlockAccountant(1.0, 1e-6)
    acc.register_blocks(range(n_blocks))
    return acc


def settlement_requests(n_requests, n_blocks, window=CHARGE_WINDOW):
    """One simulated hour of settlements: overlapping recent-block windows."""
    window = min(window, n_blocks)
    budget = PrivacyBudget(0.5 / n_requests, 1e-9 / n_requests)
    requests = []
    for j in range(n_requests):
        newest = n_blocks - 1 - (j % (n_blocks - window + 1))
        keys = list(range(newest - window + 1, newest + 1))
        requests.append((keys, budget, f"settle-{j}"))
    return requests


def check_charge_parity(n_requests, n_blocks):
    requests = settlement_requests(n_requests, n_blocks)
    batched, sequential = build_accountant(n_blocks), build_accountant(n_blocks)
    batched.charge_many(requests)
    for keys, budget, label in requests:
        sequential.charge(keys, budget, label=label)
    if not np.array_equal(batched.store.totals, sequential.store.totals):
        raise AssertionError("charge_many totals diverged from sequential charges")


def bench_charge_many(n_requests, n_blocks, repeats=3):
    requests = settlement_requests(n_requests, n_blocks)

    def run_batched():
        build_accountant(n_blocks).charge_many(requests)

    def run_sequential():
        acc = build_accountant(n_blocks)
        for keys, budget, label in requests:
            acc.charge(keys, budget, label=label)

    # Subtract the shared accountant-construction cost from both sides.
    t_build = _best_of(lambda: build_accountant(n_blocks), repeats)
    t_fast = max(1e-9, _best_of(run_batched, repeats) - t_build)
    t_slow = max(1e-9, _best_of(run_sequential, repeats) - t_build)
    return t_slow, t_fast, t_slow / t_fast


# ----------------------------------------------------------------------
def run(n_pipelines, n_blocks, assert_speedup=0.0, assert_batched_speedup=0.0):
    check_platform_parity()
    check_batched_advance_parity()
    check_charge_parity(min(n_pipelines, 64), n_blocks)

    cases = []
    t_slow, t_fast, speedup = bench_advance(n_pipelines, n_blocks)
    cases.append(
        write_bench_json(
            "hourly_settlement_advance",
            {"pipelines": n_pipelines, "blocks": n_blocks},
            t_slow * 1e3,
            t_fast * 1e3,
            bench="hourly_settlement",
        )
    )
    if assert_speedup and speedup < assert_speedup:
        raise AssertionError(
            f"Sage.advance speedup {speedup:.1f}x at {n_pipelines} pipelines x "
            f"{n_blocks} blocks is below the required {assert_speedup}x"
        )

    b_slow, b_fast, b_speedup = bench_advance_batched(n_pipelines, n_blocks)
    cases.append(
        write_bench_json(
            "hourly_settlement_batched",
            {"pipelines": n_pipelines, "blocks": n_blocks, "hours": BATCHED_HOURS},
            b_slow * 1e3,
            b_fast * 1e3,
            bench="hourly_settlement",
        )
    )
    if assert_batched_speedup and b_speedup < assert_batched_speedup:
        raise AssertionError(
            f"batched advance speedup {b_speedup:.2f}x at {n_pipelines} "
            f"pipelines x {n_blocks} blocks is below the required "
            f"{assert_batched_speedup}x"
        )

    c_slow, c_fast, c_speedup = bench_charge_many(n_pipelines, n_blocks)
    cases.append(
        write_bench_json(
            "hourly_settlement_charge_many",
            {"requests": n_pipelines, "blocks": n_blocks, "window": CHARGE_WINDOW},
            c_slow * 1e3,
            c_fast * 1e3,
            bench="hourly_settlement",
        )
    )
    # charge_many's win is bounded by the per-ledger history appends both
    # paths share, so its gate is looser than the headline advance gate.
    charge_gate = min(assert_speedup, 2.0)
    if assert_speedup and c_speedup < charge_gate:
        raise AssertionError(
            f"charge_many speedup {c_speedup:.1f}x is below the required "
            f"{charge_gate}x"
        )
    return write_bench_report(
        "hourly_settlement",
        "hourly settlement: vectorized vs seed scalar paths "
        f"({n_pipelines} pipelines x {n_blocks} blocks, best of 3)",
        cases,
    )


def test_settlement_speedup():
    """CI smoke: vectorized settlement must beat the seed loop at small size."""
    check_platform_parity()
    check_batched_advance_parity()
    check_charge_parity(40, 800)
    t_slow, t_fast, speedup = bench_advance(40, 800)
    assert speedup >= 3.0, f"only {speedup:.1f}x (slow {t_slow:.4f}s fast {t_fast:.4f}s)"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pipelines", type=int, default=DEFAULT_PIPELINES)
    parser.add_argument("--blocks", type=int, default=DEFAULT_BLOCKS)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=0.0,
        help="fail unless Sage.advance beats the legacy allocator by this factor",
    )
    parser.add_argument(
        "--assert-batched-speedup",
        type=float,
        default=0.0,
        help="fail unless the batched propose/settle hour beats the seed "
        "per-session charge loop by this factor",
    )
    args = parser.parse_args()
    print(
        run(
            args.pipelines,
            args.blocks,
            assert_speedup=args.assert_speedup,
            assert_batched_speedup=args.assert_batched_speedup,
        )
    )


if __name__ == "__main__":
    main()
