"""Telemetry tax: the instrumented hourly drive vs the bare one.

Three gates on ``Sage(telemetry=...)``:

* **Parity first**: the instrumented drive must reproduce the bare
  drive's simulation byte for byte (per-hour state digests) -- tracing
  is an observer, never a participant.  Any drift fails the bench
  before a single timing is taken.
* **Record budget (deterministic)**: the drive emits exactly one
  ``session.drive`` span per driven session and at most
  :data:`OVERHEAD_RECORDS_PER_HOUR` other records per hour.  A record
  costs ~2us; the cheapest real session drive (the requirement oracle,
  no training) runs ~100us and the cheapest hour ~500us, so one
  record/session (~2%) plus eight records/hour (~3%) keeps the enabled
  overhead under 5% of even a contention hour -- and the budget is a
  *count*, so the gate cannot flake on a noisy CI box.  This is what
  catches the real regressions: a span inside the vectorized
  validation loop or a per-charge event on the staged path blows the
  per-hour cap with the first busy hour.
* **Wall clock (loose)**: measured as the median of adjacent
  bare/instrumented pairs (GC frozen during timing) so CPU bursts hit
  both sides of a pair together.  ``--assert-max-overhead`` gates the
  ratio in CI at a deliberately loose ceiling -- container timing
  noise swings single measurements by +-15%, far wider than the ~4%
  true cost, so the tight bound is enforced by the record budget above
  and the wall clock only has to catch pathologies (re-pickling state
  per hour, tracing from worker threads, and the like).

The disabled side *is* the baseline: ``telemetry=None`` leaves every
probe as a single ``is not None`` check, so there is no third case to
time (the no-op contract is unit-tested in ``tests/obs/``).

Run (``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py``).
"""

import argparse
import gc
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from benchjson import write_bench_json, write_bench_report
from repro.core import durability
from repro.core.adaptive import AdaptiveConfig
from repro.core.platform import Sage
from repro.obs import Telemetry
from repro.workload.oracle import CountStreamSource, OraclePipeline

DEFAULT_HOURS = 24
# Ten concurrent sessions: the contention-hour shape.  The per-hour fixed
# spans (advance.*, staging.commit, charge.batch) amortize across a real
# session mix; thinner workloads overstate the ratio because the oracle
# hours themselves are only ~0.5ms.
DEFAULT_PIPELINES = 10
DEFAULT_REPEATS = 5

#: Trace records (spans + events) allowed per hour beyond the one
#: ``session.drive`` span each driven session gets.  See the module
#: docstring for the 5% arithmetic.
OVERHEAD_RECORDS_PER_HOUR = 8.0


def _build(telemetry=None):
    return Sage(CountStreamSource(4000, scale=1000), seed=5, telemetry=telemetry)


def _pipes(n):
    # Doubling targets: early pipelines terminate inside the bench window,
    # later ones stay mid-session, so hours mix charges and redistributions
    # -- the contention shape where per-session spans are densest.
    return [
        (
            OraclePipeline(name=f"p{i}", n_at_eps1=3_000.0 * (2.0 ** i)),
            AdaptiveConfig(max_attempts=16),
        )
        for i in range(n)
    ]


def _drive(sage, n_pipelines, hours):
    """Submit the workload, advance ``hours``, return (per-hour digests,
    total advance seconds).  Digesting happens outside the timer; GC is
    frozen across it so collection pauses land on neither side."""
    for pipeline, config in _pipes(n_pipelines):
        sage.submit(pipeline, config)
    digests = []
    elapsed = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(hours):
            start = time.perf_counter()
            sage.advance(1.0)
            elapsed += time.perf_counter() - start
            digests.append(durability.state_digest(sage))
    finally:
        gc.enable()
    return digests, elapsed


def _timed_run(hours, n_pipelines, telemetry=None):
    sage = _build(telemetry=telemetry)
    try:
        return _drive(sage, n_pipelines, hours)
    finally:
        sage.close()


def bench_overhead(hours, n_pipelines, repeats):
    # Parity gate: one instrumented drive against one bare drive, per-hour.
    bare_digests, _ = _timed_run(hours, n_pipelines)
    telemetry = Telemetry()
    traced_digests, _ = _timed_run(hours, n_pipelines, telemetry=telemetry)
    if traced_digests != bare_digests:
        raise AssertionError(
            "instrumented drive diverged from the bare drive (first "
            "mismatch at hour "
            f"{next(i for i, (a, b) in enumerate(zip(traced_digests, bare_digests)) if a != b)})"
        )
    if not telemetry.tracer.spans:
        raise AssertionError("instrumented drive recorded no spans")
    if telemetry.metrics.counter_value("sage_hours_advanced_total") != hours:
        raise AssertionError("hour counter disagrees with the drive length")

    # Record-budget gate (deterministic): emission volume.
    records = len(telemetry.tracer.spans) + len(telemetry.tracer.events)
    sessions = telemetry.metrics.counter_value("sage_sessions_driven_total")
    session_spans = sum(
        1 for span in telemetry.tracer.spans if span.name == "session.drive"
    )
    if session_spans != sessions:
        raise AssertionError(
            f"{session_spans} session.drive spans for {sessions:.0f} driven "
            "sessions -- the per-session budget is exactly one span"
        )
    overhead_per_hour = (records - session_spans) / hours
    if overhead_per_hour > OVERHEAD_RECORDS_PER_HOUR:
        raise AssertionError(
            f"{records - session_spans} non-session trace records over "
            f"{hours} hours ({overhead_per_hour:.2f}/hour) exceeds the "
            f"{OVERHEAD_RECORDS_PER_HOUR}/hour budget -- did a span or "
            "event land on a per-charge or vectorized path?"
        )

    # Wall clock: adjacent pairs, median ratio.  A CPU burst mid-bench
    # hits both halves of its pair, so the pairwise ratio stays honest
    # where independent minima would not.
    pairs = []
    t_off = t_on = float("inf")
    for _ in range(repeats):
        _, off = _timed_run(hours, n_pipelines)
        _, on = _timed_run(hours, n_pipelines, telemetry=Telemetry())
        pairs.append(on / off)
        t_off = min(t_off, off)
        t_on = min(t_on, on)
    return t_off, t_on, statistics.median(pairs), overhead_per_hour


def run(hours, n_pipelines, repeats, assert_max_overhead=0.0):
    t_off, t_on, overhead, overhead_per_hour = bench_overhead(
        hours, n_pipelines, repeats
    )
    case = write_bench_json(
        "telemetry_overhead",
        {
            "hours": hours,
            "pipelines": n_pipelines,
            "repeats": repeats,
            "overhead_records_per_hour": round(overhead_per_hour, 3),
        },
        t_on * 1e3,
        t_off * 1e3,
        bench="telemetry_overhead",
    )
    table = write_bench_report(
        "telemetry_overhead",
        f"telemetry overhead: {hours} hours x {n_pipelines} pipelines, "
        f"median of {repeats} paired runs",
        [case],
        columns=("instrumented", "bare"),
        notes=[
            "speedup column reads as the instrumented/bare overhead ratio "
            f"(pairwise median {overhead:.2f}x)",
            "record budget: one session.drive span per session; "
            f"{overhead_per_hour:.2f} other records/hour "
            f"(cap {OVERHEAD_RECORDS_PER_HOUR})",
            "parity: instrumented==bare per-hour digests before any timing",
        ],
    )
    if assert_max_overhead and overhead > assert_max_overhead:
        raise AssertionError(
            f"instrumented drive costs {overhead:.2f}x the bare drive, over "
            f"the allowed {assert_max_overhead}x"
        )
    return table


def test_telemetry_overhead_smoke():
    """CI smoke: parity, the deterministic record budget, and a loose
    wall-clock ceiling.  Oracle hours are sub-millisecond, so a handful
    of span allocations per hour reads as a few percent of wall clock
    here; on any real hour (training attempts) it vanishes.  The tight
    <5% envelope is the record budget inside ``bench_overhead``."""
    t_off, t_on, overhead, per_hour = bench_overhead(12, 4, repeats=2)
    assert per_hour <= OVERHEAD_RECORDS_PER_HOUR
    assert overhead <= 2.0, f"{overhead:.2f}x (off {t_off:.4f}s on {t_on:.4f}s)"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=DEFAULT_HOURS)
    parser.add_argument("--pipelines", type=int, default=DEFAULT_PIPELINES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--assert-max-overhead",
        type=float,
        default=0.0,
        help="fail if the instrumented drive costs more than this factor "
        "of the bare drive (loose pathology gate; the tight bound is the "
        "always-on record budget)",
    )
    args = parser.parse_args()
    print(
        run(
            args.hours,
            args.pipelines,
            args.repeats,
            assert_max_overhead=args.assert_max_overhead,
        )
    )


if __name__ == "__main__":
    main()
